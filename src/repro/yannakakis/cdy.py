"""The Constant-Delay Yannakakis (CDY) evaluator for free-connex CQs.

Implements the positive side of Theorem 3 exactly as the paper sketches it:

1. build an ext-S-connex tree for ``H(Q)`` (``S`` defaults to ``free(Q)``),
2. assign each tree node a relation (ground atoms for atom nodes, projections
   for the virtual subset nodes), and run the classical Yannakakis full
   reducer so every remaining tuple participates in some answer,
3. enumerate the join of the *top* subtree — whose nodes cover exactly S —
   by an indexed DFS with no dead ends: linear preprocessing, constant delay.

**Preprocessing pipelines.** The default cold path (``pipeline="fused"``)
interns values to dense ids, grounds atoms column-wise and runs grounding,
both semijoin sweeps and the index build as one fused pass
(:mod:`repro.yannakakis.fused`): each node's shared-key grouping is computed
once and reused for the up-sweep, the down-sweep and the final enumeration /
extension indexes. Only the top-subtree walk indexes and membership sets are
decoded back to values (so answers, ``contains`` and the compiled walk speak
raw values at full speed); extension indexes below the top stay in id space
and :meth:`CDYEnumerator.extend` translates at its boundary. The seed
pipeline (per-row value tuples, separate
:func:`~repro.yannakakis.reducer.full_reduce` sweeps, per-index build
passes) stays callable as ``pipeline="reference"`` for differential tests
and as the benchmark baseline, mirroring the
:meth:`CDYEnumerator.iter_answers_reference` pattern.

The enumeration walk is *compiled* at preprocessing time: every S-variable
gets a fixed slot in a flat array, every top node gets an
:func:`operator.itemgetter`-style selector from already-filled slots to its
index key, and iteration runs an explicit cursor stack over the per-group
candidate lists. Per answer this costs a handful of list indexings instead of
the seed implementation's per-tuple dict writes and a ``yield from`` chain
through one generator frame per tree node (kept as
:meth:`CDYEnumerator.iter_answers_reference` for differential testing and
benchmarking).

Beyond iteration, the evaluator supports two operations the paper's
algorithms rely on:

* :meth:`CDYEnumerator.contains` — O(1) membership of an S-tuple (used by
  Algorithm 1's ``a not in Q2(I)`` test);
* :meth:`CDYEnumerator.extend` — extend an S-assignment to a full
  homomorphism by walking below the top subtree (the extension step inside
  Lemma 8).

With ``incremental=True`` the preprocessing is built on
:class:`~repro.yannakakis.reducer.IncrementalReducer` and the enumerator
gains :meth:`CDYEnumerator.apply_deltas`: base-relation ``(adds, removes)``
are mapped through grounding, interned at the boundary (the whole reduction
state lives in id space), propagated through the reduction state, and
patched into the enumeration and extension indexes — O(|Δ| + affected
groups) instead of a rebuild, answering the dynamic-setting requirement
that preprocessing survive updates. Membership probes share the reducer's
final row sets directly, so they need no maintenance at all.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from ..database.indexes import GroupIndex, tuple_selector
from ..database.instance import Instance
from ..database.interner import Interner
from ..enumeration.steps import (
    NullCounter,
    StepCounter,
    counter_or_null,
    tick_or_none,
)
from ..exceptions import (
    CursorError,
    CursorFencedError,
    DeadlineExceededError,
    EnumerationError,
    NotFreeConnexError,
    NotSConnexError,
)
from ..hypergraph import Hypergraph, build_ext_connex_tree
from ..hypergraph.connex import ExtConnexTree
from ..hypergraph.jointree import ATOM
from ..query.cq import CQ
from ..query.terms import Var
from ..resilience import deadline_counter
from .fused import FusedNode, FusedReduction, fused_reduce
from .grounding import (
    atom_row_mapper,
    ground_atoms,
    ground_atoms_columnar,
)
from .reducer import IncrementalReducer, NodeRelation, full_reduce

_EMPTY_GROUP: list = []

#: accepted values for :class:`CDYEnumerator`'s ``pipeline`` argument
PIPELINES = ("fused", "reference", "parallel")

#: checkpoint sentinel for an exhausted cursor (JSON-safe on purpose)
CURSOR_DONE = "done"


class CDYCursor:
    """A resumable iterator over the compiled top-subtree walk.

    Where :meth:`CDYEnumerator.__iter__` is a generator whose cursor-stack
    state dies with its frame, this class keeps that state (the per-level
    candidate-list positions) in plain attributes, so it can be
    *checkpointed* after any answer and *rehydrated* later — against the
    same enumerator, or against an equivalent rebuild of it — in
    O(#levels) time, independent of how many answers were already emitted.
    This is what makes O(page)-cost pagination possible in the serving
    layer: fetching page *k+1* never replays the first *k* pages.

    :meth:`checkpoint` returns a JSON-safe state: ``None`` before the
    first answer, the string ``"done"`` after exhaustion, otherwise the
    list of per-level cursor positions (each ≥ 1, pointing just past the
    row occupied by the last emitted answer). Passing that state to
    :meth:`CDYEnumerator.cursor` resumes enumeration right after the last
    emitted answer.

    A checkpoint is only valid against preprocessing in the *same* state
    as the one that issued it: the cursor fences itself (raises
    :class:`~repro.exceptions.CursorFencedError`) when the enumerator is
    delta-patched underneath it, and rehydration rejects states that do
    not fit the current group lists. Callers resuming across rebuilds
    (the serving layer) must additionally pin the instance's version
    vector — see :mod:`repro.serving.cursor`.

    ``steps`` counts cursor-stack movements — the unit the delay suites
    bound; it includes the O(#levels) rehydration work of a resume, so
    "resume + one page" is measurably O(page), not O(offset).

    An explicit *levels* structure substitutes for the enumerator's
    compiled levels: this is how :meth:`CDYEnumerator.cursor` runs the
    *sorted-group* walk for ordered enumeration — same cursor mechanics,
    same checkpoint format, only the per-group candidate lists differ.
    """

    __slots__ = (
        "enum",
        "steps",
        "_levels",
        "_out_fn",
        "_slots",
        "_lists",
        "_pos",
        "_depth",
        "_epoch",
        "_done",
    )

    def __init__(self, enum: "CDYEnumerator", state=None, levels=None) -> None:
        self.enum = enum
        self.steps = 0
        self._levels = enum._levels if levels is None else levels
        self._out_fn = enum._out_fn
        self._epoch = enum._epoch
        n = len(self._levels)
        self._slots: list = [None] * len(enum._slot_vars)
        self._lists: list = [None] * n
        self._pos: list[int] = [0] * n
        self._depth = 0
        self._done = False
        if state == CURSOR_DONE or not enum.nonempty:
            self._done = True
            return
        if state is None:
            if n:
                key_fn0, _, groups0 = self._levels[0]
                key0 = key_fn0(self._slots) if key_fn0 is not None else ()
                self._lists[0] = groups0.get(key0, _EMPTY_GROUP)
            return
        self._rehydrate(state)

    def _rehydrate(self, state) -> None:
        """Rebuild slots/lists/positions from a checkpoint in O(#levels)."""
        levels = self._levels
        n = len(levels)
        if (
            not isinstance(state, (list, tuple))
            or len(state) != n
            or not all(isinstance(i, int) and i >= 1 for i in state)
        ):
            raise CursorError(f"malformed walk state {state!r}")
        slots = self._slots
        for d, (key_fn, targets, groups) in enumerate(levels):
            key = key_fn(slots) if key_fn is not None else ()
            rows = groups.get(key, _EMPTY_GROUP)
            i = state[d]
            if i > len(rows):
                raise CursorError(
                    "walk state does not fit this preprocessing "
                    f"(level {d}: position {i} of {len(rows)})"
                )
            self._lists[d] = rows
            self._pos[d] = i
            for t, v in zip(targets, rows[i - 1]):
                slots[t] = v
            self.steps += 1
        self._depth = n - 1

    def __iter__(self) -> "CDYCursor":
        return self

    def __next__(self) -> tuple:
        if self._done:
            raise StopIteration
        if self._epoch != self.enum._epoch:
            raise CursorFencedError(
                "preprocessing was delta-patched under this cursor; "
                "re-open the session / restart enumeration"
            )
        levels = self._levels
        n = len(levels)
        if n == 0:  # degenerate: no top nodes — a single empty answer
            self._done = True
            return self._out_fn(self._slots)
        slots, lists, pos = self._slots, self._lists, self._pos
        depth = self._depth
        last = n - 1
        while depth >= 0:
            rows = lists[depth]
            i = pos[depth]
            self.steps += 1
            if i == len(rows):
                depth -= 1
                continue
            pos[depth] = i + 1
            for t, v in zip(levels[depth][1], rows[i]):
                slots[t] = v
            if depth == last:
                self._depth = depth
                return self._out_fn(slots)
            depth += 1
            key_fn, _, groups = levels[depth]
            key = key_fn(slots) if key_fn is not None else ()
            lists[depth] = groups.get(key, _EMPTY_GROUP)
            pos[depth] = 0
        self._done = True
        raise StopIteration

    def checkpoint(self):
        """The resumable state as of the last emitted answer (JSON-safe).

        ``None`` if nothing was emitted yet, ``"done"`` after exhaustion,
        else the per-level position list accepted by
        :meth:`CDYEnumerator.cursor`.
        """
        if self._done:
            return CURSOR_DONE
        if not self._pos or self._pos[-1] == 0:
            return None
        return list(self._pos)


class _TopNodePlan:
    """Enumeration plan for one top node: index keyed by already-bound vars."""

    __slots__ = ("node_id", "bound_vars", "new_vars", "index")

    def __init__(
        self,
        node_id: int,
        bound_vars: tuple[Var, ...],
        new_vars: tuple[Var, ...],
        index: GroupIndex,
    ) -> None:
        self.node_id = node_id
        self.bound_vars = bound_vars
        self.new_vars = new_vars
        self.index = index


class CDYEnumerator:
    """Linear-preprocessing, constant-delay enumeration of a free-connex CQ.

    ``s`` may be any variable set for which the query is S-connex; it
    defaults to the free variables (requiring free-connexity). Answers are
    emitted as tuples ordered by *output_order* (default: the S variables in
    sorted order if ``s`` was given, else the head of the query).

    ``prebuilt_ext`` lets a caller (the :class:`~repro.engine.Engine` plan
    cache) pass a previously built ext-S-connex tree for this query and S,
    skipping tree construction; the tree is purely query-structural, so it is
    valid for any instance.

    ``pipeline`` selects the cold preprocessing implementation: ``"fused"``
    (default — interned columnar grounding + the fused single-pass reducer
    and index build), ``"reference"`` (the seed per-row pipeline, kept for
    differential testing and benchmarking) or ``"parallel"`` (range-sharded
    fused materialization over zero-copy shard channels with ``workers``
    shards, see :mod:`repro.yannakakis.parallel`; ``pool`` selects the
    backend — ``"auto"`` (default) probes the interpreter and hardware
    (:func:`~repro.runtime.select_backend`), or force ``"thread"``,
    ``"process"`` (shared-memory segments) or ``"serial"``). All pipelines
    produce identical answers, membership and extensions; internal row
    representation differs, so cross-pipeline state comparisons go through
    :meth:`node_rows`.

    ``incremental`` builds the reduction on an
    :class:`~repro.yannakakis.reducer.IncrementalReducer` (over interned
    rows; ``pipeline`` is ignored, though ``workers > 1`` still shards
    the grounding stage) so later :meth:`apply_deltas` calls can
    maintain the preprocessed state in place. Applying deltas invalidates
    any in-flight iterator over this enumerator. ``executor`` lets a
    long-lived caller (the engine) supply a reusable worker pool instead
    of paying pool construction per build; it is never shut down here.

    ``deadline`` and ``recovery`` (see :mod:`repro.resilience`) thread
    fault tolerance through the parallel cold build: the deadline is
    checked at the reducer's phase boundaries, and a parallel build that
    fails for any non-deadline reason degrades to the serial fused
    pipeline — the outermost rung of the degradation ladder, producing
    identical answers and recorded as a ``fallbacks`` event.
    """

    def __init__(
        self,
        cq: CQ,
        instance: Instance,
        s: Sequence[Var] | frozenset[Var] | None = None,
        output_order: Sequence[Var] | None = None,
        counter: StepCounter | None = None,
        prebuilt_ext: ExtConnexTree | None = None,
        incremental: bool = False,
        pipeline: str = "fused",
        workers: int = 1,
        pool: str = "auto",
        executor=None,
        prebuilt_reduction: FusedReduction | None = None,
        interner: Interner | None = None,
        deadline=None,
        recovery=None,
    ) -> None:
        self.cq = cq
        self.counter = counter_or_null(counter)
        if pipeline not in PIPELINES:
            raise ValueError(
                f"unknown pipeline {pipeline!r}; expected one of {PIPELINES}"
            )
        if s is None:
            self.s = cq.free
            default_order: tuple[Var, ...] = cq.head
        else:
            self.s = frozenset(s)
            if not self.s <= cq.variables:
                raise NotSConnexError("S must be a subset of var(Q)")
            default_order = tuple(sorted(self.s, key=str))
        self.output_order: tuple[Var, ...] = (
            tuple(output_order) if output_order is not None else default_order
        )
        if set(self.output_order) != set(self.s):
            raise NotSConnexError("output_order must be a permutation of S")

        # ---- preprocessing (linear) ---------------------------------- #
        # the deadline rides the *build's* tick seam only: the enumerator
        # (and any cursors over it) outlives the request that built it,
        # so self.counter must never inherit a request-scoped deadline
        build_counter = (
            counter
            if deadline is None
            else deadline_counter(deadline, counter)
        )
        parallel = pipeline == "parallel" and not incremental
        interned = incremental or pipeline == "fused" or parallel
        if prebuilt_reduction is not None:
            # fragment-shared cold build: the reduction was materialized
            # outside (the engine's batch planner, possibly reusing cached
            # subtree groups across members) and is adopted verbatim. The
            # interner must be the one its groups were interned through —
            # ids are only comparable within a single interner — and the
            # build is necessarily non-incremental: the counting reducer
            # needs unreduced bases, which shared fragments don't keep.
            if incremental:
                raise ValueError(
                    "prebuilt_reduction is incompatible with incremental=True"
                )
            if prebuilt_ext is None or interner is None:
                raise ValueError(
                    "prebuilt_reduction requires prebuilt_ext and the "
                    "interner its groups were built against"
                )
            parallel = False
            interned = True
            self.interner: Interner | None = interner
            grounded = None
        elif parallel:
            # workers ground their own shards; grounding preserves each
            # atom's variable set, so the tree builds from the atoms alone
            self.interner: Interner | None = Interner()
            grounded = None
        elif interned:
            self.interner = Interner()
            if incremental and workers > 1 and counter is None:
                # the incremental reduction must stay on the counting
                # reducer (deltas can revive batch-discarded rows), but
                # its grounding/interning stage still distributes across
                # shards — this is what `workers` parallelizes on the
                # serving cold path
                from .parallel import parallel_ground_columnar

                grounded = parallel_ground_columnar(
                    cq, instance, self.interner, workers, pool,
                    executor=executor, recovery=recovery,
                    deadline=deadline,
                )
            else:
                grounded = ground_atoms_columnar(
                    cq, instance, self.interner, build_counter
                )
        else:
            self.interner = None
            grounded = ground_atoms(cq, instance, self.counter)
        if prebuilt_ext is not None:
            ext = prebuilt_ext
        else:
            if grounded is None:
                hg = Hypergraph.from_edges(a.variable_set for a in cq.atoms)
            else:
                hg = Hypergraph.from_edges(g.variable_set for g in grounded)
            ext = build_ext_connex_tree(hg, self.s)
            if ext is None:
                label = "free-connex" if s is None else "S-connex"
                raise NotFreeConnexError(
                    f"{cq.name} is not {label} for S={set(self.s)}"
                )
        self.ext = ext
        self.tree = ext.tree
        self.top_order = ext.top_subtree_order()

        #: bumped by apply_deltas so stale in-flight iterators fail loudly
        self._epoch = 0
        #: (epoch, |Q(I)|S|) memo for count_answers; dies with the epoch
        self._count_cache: tuple[int, int] | None = None
        #: per-order sorted-group walk structures, keyed by the per-level
        #: column permutations; entries are (epoch, levels) and stale
        #: epochs are dropped lazily
        self._ordered_cache: dict[tuple, tuple[int, list]] = {}
        self._reducer: IncrementalReducer | None = None
        self.relations: dict[int, NodeRelation] = {}
        self.plans: list[_TopNodePlan] = []
        self._extension_plan: list[
            tuple[int, tuple[Var, ...], tuple[Var, ...], GroupIndex]
        ] = []
        # per top node: (variable order of the probed rows, row set); the
        # membership structures contains() checks. Reference/incremental
        # modes alias node rows (value / id space); fused mode builds
        # decoded key+residual rows
        self._membership_info: list[tuple[tuple[Var, ...], set]] = []

        if prebuilt_reduction is not None:
            self._adopt_reduction(prebuilt_reduction, build_counter)
        elif incremental:
            self._build_incremental(grounded, build_counter)
        elif parallel:
            self._build_parallel(
                instance, workers, pool, executor, build_counter,
                deadline, recovery,
            )
        elif interned:
            self._build_fused(grounded, build_counter)
        else:
            self._build_reference(grounded)

        # ---- compiled walk: slots, selectors, group maps -------------- #
        # one slot per S-variable, in order of first introduction
        slot_of: dict[Var, int] = {}
        for plan in self.plans:
            for v in plan.new_vars:
                slot_of[v] = len(slot_of)
        self._slot_vars: tuple[Var, ...] = tuple(slot_of)
        # per level: (key selector from slots | None, target slots, groups)
        self._levels: list[tuple] = []
        for plan in self.plans:
            bound_slots = tuple(slot_of[v] for v in plan.bound_vars)
            target_slots = tuple(slot_of[v] for v in plan.new_vars)
            key_fn = tuple_selector(bound_slots) if bound_slots else None
            self._levels.append((key_fn, target_slots, plan.index.groups))
        out_slots = tuple(slot_of[v] for v in self.output_order)
        self._out_fn = tuple_selector(out_slots)

        # membership selectors for contains(): answer tuple -> probed row
        answer_pos = {v: i for i, v in enumerate(self.output_order)}
        self._membership: list[tuple] = [
            (
                tuple_selector(tuple(answer_pos[v] for v in row_order)),
                rows,
            )
            for row_order, rows in self._membership_info
        ]

    # ------------------------------------------------------------------ #
    # build paths

    def _plan_splits(self) -> Iterator[tuple[int, tuple, tuple]]:
        """``(node id, bound vars, new vars)`` per top node in walk order."""
        seen: set[Var] = set()
        for nid in self.top_order:
            node_vars = self.relations[nid].vars
            bound = tuple(v for v in node_vars if v in seen)
            new = tuple(v for v in node_vars if v not in seen)
            seen.update(node_vars)
            yield nid, bound, new

    def _extension_splits(self) -> Iterator[tuple[int, tuple, tuple]]:
        """``(node id, bound vars, new vars)`` per below-top node, topdown."""
        top_set = set(self.ext.top_ids)
        assigned: set[Var] = set(self.s)
        for nid in self.tree.topdown_order():
            if nid in top_set:
                continue
            node_vars = self.relations[nid].vars
            bound = tuple(v for v in node_vars if v in assigned)
            new = tuple(v for v in node_vars if v not in assigned)
            assigned.update(node_vars)
            yield nid, bound, new

    @staticmethod
    def _check_bound(bound: tuple, fn: FusedNode, nid: int) -> None:
        if bound != fn.key_vars:  # pragma: no cover - structural invariant
            raise EnumerationError(
                f"fused grouping key {fn.key_vars} of node {nid} does not "
                f"match the plan's bound variables {bound}; the join tree "
                "violates the running-intersection property"
            )

    def _build_reference(self, grounded: list) -> None:
        """The seed pipeline: value-tuple node relations, separate
        :func:`full_reduce` sweeps, then per-index build passes."""
        # node relations: atom nodes from ground atoms; projection nodes
        # from their source child (node ids ascend along creation order, so
        # a single ascending pass resolves all sources)
        for nid in sorted(self.tree.nodes):
            node = self.tree.nodes[nid]
            node_vars = tuple(sorted(node.vars, key=str))
            if node.kind == ATOM:
                g = grounded[node.atom_index]
                project = tuple_selector(
                    tuple(g.vars.index(v) for v in node_vars)
                )
                rows = {project(t) for t in g.rows}
                self.counter.tick(len(g.rows))
            else:
                src = self.relations[node.source]
                positions = src.positions_of(node_vars)
                rows = src.project_rows(positions)
                self.counter.tick(len(src.rows))
            self.relations[nid] = NodeRelation(node_vars, rows)
        self.nonempty = full_reduce(self.tree, self.relations, self.counter)

        for nid, bound, new in self._plan_splits():
            rel = self.relations[nid]
            index = GroupIndex(
                rel.rows, rel.positions_of(bound), rel.positions_of(new)
            )
            self.plans.append(_TopNodePlan(nid, bound, new, index))
            self._membership_info.append((rel.vars, rel.rows))
            self.counter.tick(len(rel.rows))
        for nid, bound, new in self._extension_splits():
            rel = self.relations[nid]
            index = GroupIndex(
                rel.rows, rel.positions_of(bound), rel.positions_of(new)
            )
            self._extension_plan.append((nid, bound, new, index))

    def _build_fused(self, grounded: list, counter) -> None:
        """The fused pipeline: one bottom-up materialize+reduce+group pass,
        a group-granular down-sweep, and adoption of each node's (already
        correctly keyed) grouping as its final index — top-subtree nodes
        come out of the pass in value space, the rest stay in id space."""
        fused = fused_reduce(
            self.tree,
            grounded,
            self.interner,
            counter,
            decode_top=self.ext.top_ids,
        )
        self._adopt_reduction(fused, counter)

    def _build_parallel(
        self,
        instance: Instance,
        workers: int,
        pool: str,
        executor,
        counter,
        deadline=None,
        recovery=None,
    ) -> None:
        """The sharded pipeline: per-shard fused materialization in a
        worker pool, interner reconciliation at merge, then the group-level
        sweeps — adopted through the same path as the fused pipeline
        (see :func:`~repro.yannakakis.parallel.parallel_reduce`).

        A parallel build that fails for any non-deadline reason — the
        reducer's own per-shard ladder has already retried and
        serial-fallback'd what it could — degrades to a whole-build run
        of the serial fused pipeline against a fresh interner: the
        outermost degradation rung, differentially identical by the same
        invariant the pipeline suites assert. Deadline misses propagate:
        the caller asked for an answer *by a time*, not at any cost.
        """
        from ..runtime import resolve_pool
        from .parallel import parallel_reduce

        # a bad configuration is a caller bug, not a fault to degrade
        # around: validate eagerly so ValueError propagates untouched
        resolve_pool(pool, workers)
        try:
            fused = parallel_reduce(
                self.tree,
                self.cq,
                instance,
                self.interner,
                workers=workers,
                counter=counter,
                decode_top=self.ext.top_ids,
                pool=pool,
                executor=executor,
                deadline=deadline,
                recovery=recovery,
            )
        except DeadlineExceededError:
            raise
        except Exception:
            if recovery is not None:
                recovery.note(fallbacks=1)
            # nothing was adopted yet (failure precedes _adopt_reduction);
            # rebuild from scratch on the serial fused pipeline
            self.interner = Interner()
            grounded = ground_atoms_columnar(
                self.cq, instance, self.interner, counter
            )
            self._build_fused(grounded, counter)
            return
        self._adopt_reduction(fused, counter)

    def _adopt_reduction(self, fused, counter) -> None:
        """Adopt a :class:`~repro.yannakakis.fused.FusedReduction`'s
        groupings as the final enumeration/extension indexes and
        membership structures."""
        self.nonempty = fused.nonempty
        for nid, fn in fused.nodes.items():
            # value-space row sets are reconstructed on demand by
            # node_rows(); the plan indexes below hold the actual data
            self.relations[nid] = NodeRelation(fn.vars, set())
        tick = tick_or_none(counter)
        for nid, bound, new in self._plan_splits():
            fn = fused.nodes[nid]
            self._check_bound(bound, fn, nid)
            membership: set[tuple] = set()
            for key, rows in fn.groups.items():
                if key:
                    membership.update(map(key.__add__, rows))
                else:
                    membership.update(rows)
            if tick is not None:
                tick(fn.row_count)
            index = GroupIndex.from_groups(
                fn.key_positions, fn.res_positions, fn.groups
            )
            self.plans.append(_TopNodePlan(nid, bound, new, index))
            self._membership_info.append((bound + new, membership))
        for nid, bound, new in self._extension_splits():
            fn = fused.nodes[nid]
            self._check_bound(bound, fn, nid)
            index = GroupIndex.from_groups(
                fn.key_positions, fn.res_positions, fn.groups
            )
            self._extension_plan.append((nid, bound, new, index))

    def _build_incremental(self, grounded: list, counter) -> None:
        """Interned rows + counting reducer; top indexes decoded at the end.

        The reducer needs the *unreduced* atom bases (deltas can revive
        rows the batch sweeps would discard), so the fused reduction is not
        reused here; grounding and materialization still run columnar and
        the whole reduction state lives in id space — deltas are interned
        at the boundary (:meth:`apply_deltas`).
        """
        for nid in sorted(self.tree.nodes):
            node = self.tree.nodes[nid]
            node_vars = tuple(sorted(node.vars, key=str))
            if node.kind == ATOM:
                g = grounded[node.atom_index]
                if g.vars:
                    cols = [g.columns[g.vars.index(v)] for v in node_vars]
                    rows = set(zip(*cols))
                else:
                    rows = {()} if g.row_count else set()
                self.counter.tick(g.row_count)
            else:
                # the reducer derives projection-node bases itself (it
                # needs the per-projection support counts anyway)
                rows = set()
            self.relations[nid] = NodeRelation(node_vars, rows)
        self._reducer = IncrementalReducer(self.tree, self.relations, counter)
        # alias each node relation to the reducer's reduced rows: delta
        # application then keeps relations (and membership) current in place
        for nid, rel in self.relations.items():
            rel.rows = self._reducer.final[nid]
        self.nonempty = self._reducer.nonempty
        self._atom_node = {
            node.atom_index: nid
            for nid, node in self.tree.nodes.items()
            if node.kind == ATOM
        }
        self._delta_mappers = []
        for index, (atom, g) in enumerate(zip(self.cq.atoms, grounded)):
            node_rel = self.relations[self._atom_node[index]]
            permute = tuple_selector(
                tuple(g.vars.index(v) for v in node_rel.vars)
            )
            self._delta_mappers.append((atom_row_mapper(atom)[0], permute))

        values = self.interner.values
        tick = tick_or_none(counter)
        for nid, bound, new in self._plan_splits():
            rel = self.relations[nid]
            index = self._decode_grouped(rel, bound, new, values)
            if tick is not None:
                tick(len(rel.rows))
            # membership probes the reducer's final rows themselves (id
            # space, answer interned at the boundary): no maintenance
            self._membership_info.append((rel.vars, rel.rows))
            self.plans.append(_TopNodePlan(nid, bound, new, index))
        for nid, bound, new in self._extension_splits():
            rel = self.relations[nid]
            index = GroupIndex(
                rel.rows, rel.positions_of(bound), rel.positions_of(new)
            )
            if tick is not None:
                tick(len(rel.rows))
            self._extension_plan.append((nid, bound, new, index))

    @staticmethod
    def _decode_grouped(
        rel: NodeRelation,
        bound: tuple[Var, ...],
        new: tuple[Var, ...],
        values: list,
    ) -> GroupIndex:
        """Group a flat interned row set into a decoded GroupIndex."""
        key_positions = rel.positions_of(bound)
        val_positions = rel.positions_of(new)
        key_sel = tuple_selector(key_positions)
        val_sel = tuple_selector(val_positions)
        dgroups: dict[tuple, list[tuple]] = {}
        get = dgroups.get
        for row in rel.rows:
            drow = tuple(map(values.__getitem__, row))
            k = key_sel(drow)
            vals = get(k)
            if vals is None:
                dgroups[k] = [val_sel(drow)]
            else:
                vals.append(val_sel(drow))
        return GroupIndex.from_groups(key_positions, val_positions, dgroups)

    # ------------------------------------------------------------------ #
    # introspection

    def node_rows(self, nid: int) -> set[tuple]:
        """A node's fully reduced rows in *value* space, over the node's
        sorted variable order.

        Mode-independent: the fused and incremental pipelines keep interned
        id rows internally (and the fused pipeline stores them key-split
        inside the plan indexes); this accessor reconstructs plain value
        rows, so states built by different pipelines — or by delta
        maintenance vs a rebuild, whose interners assign different ids —
        compare equal.
        """
        rel = self.relations[nid]
        if self._reducer is not None:
            values = self.interner.values
            return {
                tuple(map(values.__getitem__, row)) for row in rel.rows
            }
        if self.interner is None:
            return set(rel.rows)
        # fused: reassemble rows from the node's (key, residual) index
        for plan in self.plans:
            if plan.node_id == nid:
                index, bound, new, decoded = (
                    plan.index, plan.bound_vars, plan.new_vars, True,
                )
                break
        else:
            for xnid, bound, new, index in self._extension_plan:
                if xnid == nid:
                    decoded = False
                    break
            else:  # pragma: no cover - every node is top or below-top
                raise KeyError(nid)
        order = bound + new
        perm = tuple(order.index(v) for v in rel.vars)
        values = self.interner.values
        rows: set[tuple] = set()
        for key, vals in index.groups.items():
            for val in vals:
                row = key + val
                row = tuple(row[p] for p in perm)
                if not decoded:
                    row = tuple(map(values.__getitem__, row))
                rows.add(row)
        return rows

    # ------------------------------------------------------------------ #
    # enumeration

    def _walk_slots(self) -> Iterator[list]:
        """Iterative cursor-stack walk over the compiled levels.

        Yields the (reused) flat slot list once per S-assignment. Full
        reduction guarantees there are no dead ends, so between two yields
        the cursor moves at most once per level: constant delay.
        """
        levels = self._levels
        n = len(levels)
        slots: list = [None] * len(self._slot_vars)
        if n == 0:  # degenerate: no top nodes (cannot happen in practice)
            yield slots
            return
        counter = self.counter
        tick = None if isinstance(counter, NullCounter) else counter.tick
        epoch = self._epoch
        lists: list = [None] * n
        pos = [0] * n
        last = n - 1
        key_fn0, _, groups0 = levels[0]
        key0 = key_fn0(slots) if key_fn0 is not None else ()
        lists[0] = groups0.get(key0, _EMPTY_GROUP)
        depth = 0
        while depth >= 0:
            if epoch != self._epoch:
                raise EnumerationError(
                    "preprocessing was mutated (apply_deltas) during "
                    "enumeration; restart the iterator"
                )
            rows = lists[depth]
            i = pos[depth]
            if i == len(rows):
                depth -= 1
                continue
            pos[depth] = i + 1
            values = rows[i]
            if tick is not None:
                tick()
            for t, v in zip(levels[depth][1], values):
                slots[t] = v
            if depth == last:
                yield slots
            else:
                depth += 1
                key_fn, _, groups = levels[depth]
                key = key_fn(slots) if key_fn is not None else ()
                lists[depth] = groups.get(key, _EMPTY_GROUP)
                pos[depth] = 0

    def assignments(self) -> Iterator[dict[Var, object]]:
        """Enumerate S-assignments (constant delay after preprocessing).

        Each yielded dict is fresh (safe to retain across iterations).
        """
        if not self.nonempty:
            return
        svars = self._slot_vars
        for slots in self._walk_slots():
            yield dict(zip(svars, slots))

    def __iter__(self) -> Iterator[tuple]:
        if not self.nonempty:
            return
        out_fn = self._out_fn
        counter = self.counter
        if isinstance(counter, NullCounter):
            for slots in self._walk_slots():
                yield out_fn(slots)
        else:
            tick = counter.tick
            for slots in self._walk_slots():
                tick()
                yield out_fn(slots)

    def cursor(self, state=None, order_by: Sequence[Var] | None = None) -> CDYCursor:
        """A resumable iterator over the compiled walk (see :class:`CDYCursor`).

        With ``state=None`` enumeration starts from the first answer; with a
        state previously returned by :meth:`CDYCursor.checkpoint` it resumes
        right after the answer the checkpoint was taken at, in O(#levels) —
        never by replaying the already-delivered prefix.

        With *order_by* (a sequence of S-variables) the cursor runs the
        *sorted-group* walk: each level's candidate lists are sorted by a
        column permutation that makes ``order_by`` a prefix of the walk's
        slot-binding sequence, so answers come out sorted by the requested
        variables (ties broken by the remaining binding columns — a
        deterministic total order). Requires
        :meth:`order_achievable`; raises
        :class:`~repro.exceptions.EnumerationError` otherwise. Checkpoints
        are position lists exactly as in the unordered walk and resume
        against the same ``order_by``. The sorted structures are built once
        per (order, epoch) — O(preprocessing · log) — and shared by all
        cursors over this enumerator.
        """
        if order_by is None:
            return CDYCursor(self, state)
        perms = self._order_perms(tuple(order_by))
        if perms is None:
            raise EnumerationError(
                f"order {[str(v) for v in order_by]} is not achievable by "
                "the compiled walk for this join tree; materialize and sort "
                "instead"
            )
        return CDYCursor(self, state, levels=self._sorted_levels(perms))

    def iter_answers_reference(self) -> Iterator[tuple]:
        """The seed (pre-compilation) walk: recursive, dict-mutating.

        Kept as a correctness reference for differential tests and as the
        baseline the engine benchmark measures the compiled walk against.
        """
        if not self.nonempty:
            return
        plans = self.plans
        counter = self.counter
        output_order = self.output_order
        epoch = self._epoch
        assignment: dict[Var, object] = {}

        def walk(depth: int) -> Iterator[dict[Var, object]]:
            if depth == len(plans):
                yield assignment
                return
            plan = plans[depth]
            key = tuple(assignment[v] for v in plan.bound_vars)
            for values in plan.index.lookup(key):
                counter.tick()
                for var, val in zip(plan.new_vars, values):
                    assignment[var] = val
                yield from walk(depth + 1)
            for var in plan.new_vars:
                assignment.pop(var, None)

        for a in walk(0):
            if epoch != self._epoch:
                raise EnumerationError(
                    "preprocessing was mutated (apply_deltas) during "
                    "enumeration; restart the iterator"
                )
            counter.tick()
            yield tuple(a[v] for v in output_order)

    # ------------------------------------------------------------------ #
    # constant-time membership

    def contains(self, answer: tuple) -> bool:
        """O(1) test whether *answer* (in output order) is in Q(I)|S."""
        if not self.nonempty or len(answer) != len(self.output_order):
            return False
        if self._reducer is not None:
            # incremental state probes id rows: intern at the boundary (a
            # value the interner never saw occurs in no relation)
            id_of = self.interner.ids.get
            ids = []
            for v in answer:
                i = id_of(v)
                if i is None:
                    return False
                ids.append(i)
            answer = tuple(ids)
        tick = self.counter.tick
        for key_fn, rows in self._membership:
            tick()
            if key_fn(answer) not in rows:
                return False
        return True

    def __contains__(self, answer: tuple) -> bool:
        return self.contains(answer)

    # ------------------------------------------------------------------ #
    # Lemma 8's extension step

    def extend(self, assignment: dict[Var, object]) -> dict[Var, object]:
        """Extend an S-assignment to a full homomorphism of the body.

        Walks the tree below the top subtree, taking for each node *some*
        matching tuple (the full reducer guarantees one exists). Constant
        time per query (data-independent number of nodes). In the interned
        pipelines the extension indexes live in id space; the assignment is
        translated on the way in and matches decoded on the way out.
        """
        full = dict(assignment)
        tick = self.counter.tick
        if self.interner is None:
            for _nid, bound, new, index in self._extension_plan:
                tick()
                key = tuple(full[v] for v in bound)
                matches = index.lookup(key)
                if not matches:
                    raise NotFreeConnexError(
                        "extension failed: relation not fully reduced "
                        "(internal error)"
                    )
                for var, val in zip(new, matches[0]):
                    full[var] = val
            return full
        id_of = self.interner.ids.get
        values = self.interner.values
        decoded: dict[Var, object] = {}
        for _nid, bound, new, index in self._extension_plan:
            tick()
            key = tuple(
                decoded[v] if v in decoded else id_of(full[v]) for v in bound
            )
            matches = index.lookup(key)
            if not matches:
                raise NotFreeConnexError(
                    "extension failed: relation not fully reduced "
                    "(internal error)"
                )
            for var, val in zip(new, matches[0]):
                decoded[var] = val
                full[var] = values[val]
        return full

    # ------------------------------------------------------------------ #
    # incremental maintenance

    def apply_deltas(
        self, deltas: Mapping[str, tuple[Iterable[tuple], Iterable[tuple]]]
    ) -> None:
        """Maintain the preprocessed state under base-relation changes.

        *deltas* maps relation symbols to net ``(adds, removes)`` of base
        tuples (the shape :meth:`Instance.diff_since` produces). Each delta
        is grounded per atom (constants/repeated variables filter, then the
        injective projection), interned into the enumerator's id space,
        pushed through the incremental reducer, and patched into the
        enumeration indexes (decoded — the walk structures never see ids)
        and the id-space extension indexes. Membership probes alias the
        reducer's final row sets, so they update automatically. Requires
        ``incremental=True`` at construction. In-flight iterators over this
        enumerator are invalidated: their next step raises
        :class:`EnumerationError` instead of mixing pre- and post-update
        state.
        """
        if self._reducer is None:
            raise EnumerationError(
                "CDYEnumerator was built without incremental=True; "
                "rebuild instead of applying deltas"
            )
        try:
            self._apply_deltas(deltas)
        finally:
            # bump even on failure: a half-patched enumerator must make
            # in-flight iterators raise, never serve mixed state
            self._epoch += 1

    def _apply_deltas(
        self, deltas: Mapping[str, tuple[Iterable[tuple], Iterable[tuple]]]
    ) -> None:
        node_deltas: dict[int, tuple[set[tuple], set[tuple]]] = {}
        intern = self.interner.intern
        for index, atom in enumerate(self.cq.atoms):
            delta = deltas.get(atom.relation)
            if delta is None:
                continue
            mapper, permute = self._delta_mappers[index]
            nid = self._atom_node[index]
            adds, removes = node_deltas.setdefault(nid, (set(), set()))
            for t in delta[0]:
                row = mapper(tuple(t))
                if row is not None:
                    adds.add(permute(tuple(intern(v) for v in row)))
            for t in delta[1]:
                row = mapper(tuple(t))
                if row is not None:
                    removes.add(permute(tuple(intern(v) for v in row)))
        changed = self._reducer.apply(
            {nid: d for nid, d in node_deltas.items() if d[0] or d[1]}
        )
        values = self.interner.values
        getv = values.__getitem__
        for plan in self.plans:
            node_change = changed.get(plan.node_id)
            if node_change is not None:
                plan.index.apply_delta(
                    [tuple(map(getv, r)) for r in node_change[0]],
                    [tuple(map(getv, r)) for r in node_change[1]],
                )
        for nid, _bound, _new, index_ in self._extension_plan:
            node_change = changed.get(nid)
            if node_change is not None:
                index_.apply_delta(node_change[0], node_change[1])
        self.nonempty = self._reducer.nonempty

    def poison(self) -> None:
        """Force in-flight iterators to raise on their next step (used when a
        sibling enumerator's delta application failed midway)."""
        self._epoch += 1

    # ------------------------------------------------------------------ #
    # exact counting (no enumeration)

    def count_answers(self, *, refresh: bool = False) -> int:
        """Exact ``|Q(I)|S|`` without enumerating a single answer.

        A children-first dynamic program over the top subtree: for each top
        node, the number of walk completions below it per index key is the
        sum over the node's candidate rows of the product of its top
        children's counts at the keys those rows induce — the same
        recursion the cursor-stack walk unfolds answer by answer, collapsed
        into per-group integers. The full reducer guarantees every group a
        row references exists, so the DP visits each stored row exactly
        once: O(preprocessing-size) time, and it never touches the step
        counter (counting is *not* enumeration; the zero-tick suites
        assert this).

        The result is memoized against the delta epoch: repeated counts on
        unchanged state are O(1), and :meth:`apply_deltas` invalidates the
        memo along with in-flight cursors, so counts stay consistent with
        the delta-maintained indexes. ``refresh=True`` forces a recompute
        (the benchmark harness uses it to time the DP itself).
        """
        cached = self._count_cache
        if not refresh and cached is not None and cached[0] == self._epoch:
            return cached[1]
        total = self._count()
        self._count_cache = (self._epoch, total)
        return total

    def _count(self) -> int:
        if not self.nonempty:
            return 0
        plans = self.plans
        if not plans:  # degenerate: no top nodes — the single empty answer
            return 1
        plan_of = {p.node_id: p for p in plans}
        children = self.tree.children
        counts: dict[int, dict[tuple, int]] = {}
        for nid in reversed(self.top_order):
            plan = plan_of[nid]
            pos = {
                v: i
                for i, v in enumerate(plan.bound_vars + plan.new_vars)
            }
            child_info = [
                (
                    tuple_selector(
                        tuple(pos[v] for v in plan_of[c].bound_vars)
                    ),
                    counts[c],
                )
                for c in children.get(nid, ())
                if c in plan_of
            ]
            node_counts: dict[tuple, int] = {}
            if not child_info:
                for key, rows in plan.index.groups.items():
                    node_counts[key] = len(rows)
            else:
                for key, rows in plan.index.groups.items():
                    total = 0
                    for row in rows:
                        full = key + row
                        prod = 1
                        for sel, ccounts in child_info:
                            prod *= ccounts.get(sel(full), 0)
                            if not prod:
                                break
                        total += prod
                    node_counts[key] = total
            counts[nid] = node_counts
        return counts[self.top_order[0]].get((), 0)

    # ------------------------------------------------------------------ #
    # ordered enumeration (sorted-group walk)

    def order_achievable(self, order_by: Sequence[Var]) -> bool:
        """Whether the compiled walk can emit answers sorted by *order_by*.

        True iff ``order_by`` can be made a prefix of the walk's
        slot-binding sequence by permuting columns *within* each level —
        i.e. the order variables fill whole levels in walk order, with at
        most one partially-constrained final level. Orders that interleave
        variables across levels need a materialize-and-sort fallback
        (the engine provides one).
        """
        return self._order_perms(tuple(order_by)) is not None

    def _order_perms(
        self, order_by: tuple[Var, ...]
    ) -> tuple[tuple[int, ...], ...] | None:
        """Per-level full column permutations realizing *order_by*, or None."""
        svars = set(self._slot_vars)
        if len(set(order_by)) != len(order_by):
            raise EnumerationError("duplicate variable in order_by")
        for v in order_by:
            if v not in svars:
                raise EnumerationError(
                    f"order_by variable {v} is not an S-variable of {self.cq.name}"
                )
        m = len(order_by)
        pos = 0
        perms: list[tuple[int, ...]] = []
        for plan in self.plans:
            new = plan.new_vars
            if pos >= m:
                perms.append(tuple(range(len(new))))
                continue
            take = order_by[pos : pos + len(new)]
            if not set(take) <= set(new):
                return None
            rest = [v for v in new if v not in set(take)]
            perms.append(tuple(new.index(v) for v in (*take, *rest)))
            pos += len(take)
        return tuple(perms) if pos >= m else None

    def _sorted_levels(self, perms: tuple[tuple[int, ...], ...]) -> list:
        """Walk levels with each group's rows sorted by the given per-level
        column permutations; cached per (perms, epoch) and shared across
        cursors."""
        cached = self._ordered_cache.get(perms)
        if cached is not None and cached[0] == self._epoch:
            return cached[1]
        levels: list = []
        try:
            for (key_fn, targets, groups), perm in zip(self._levels, perms):
                sel = tuple_selector(perm)
                levels.append(
                    (
                        key_fn,
                        targets,
                        {k: sorted(rows, key=sel) for k, rows in groups.items()},
                    )
                )
        except TypeError as exc:
            raise EnumerationError(
                "ordered enumeration requires mutually comparable values "
                "in every ordered column"
            ) from exc
        if len(self._ordered_cache) >= 8:  # bound growth; stale epochs first
            self._ordered_cache = {
                k: v for k, v in self._ordered_cache.items()
                if v[0] == self._epoch
            }
        self._ordered_cache[perms] = (self._epoch, levels)
        return levels

    # ------------------------------------------------------------------ #

    def answer_count_upper_bound(self) -> int:
        """Product of top-node sizes (a cheap upper bound on |Q(I)|S|).

        For the exact count use :meth:`count_answers`; this bound costs
        O(#nodes) on incremental builds (the reducer tracks final sizes)
        and never allocates.
        """
        bound = 1
        if self._reducer is not None:
            sizes = self._reducer.final_sizes()
            for plan in self.plans:
                bound *= max(1, sizes[plan.node_id])
            return bound
        for plan in self.plans:
            size = sum(len(g) for g in plan.index.groups.values())
            bound *= max(1, size)
        return bound


def enumerate_cq(
    cq: CQ,
    instance: Instance,
    counter: StepCounter | None = None,
) -> Iterator[tuple]:
    """Convenience: CDY enumeration of a free-connex CQ's answers."""
    yield from CDYEnumerator(cq, instance, counter=counter)
