"""Query minimization: CQ cores and UCQ redundancy removal.

Example 1 of the paper shows why non-redundant unions are the right unit of
study: a union containing ``Q1 ⊆ Q2`` is equivalent to the union without
``Q1``. :func:`remove_redundant_cqs` performs exactly that normalization;
:func:`core_of` minimizes a single CQ's body (folding superfluous atoms).
"""

from __future__ import annotations

from .cq import CQ
from .homomorphism import body_homomorphisms, is_contained
from .terms import Term, Var
from .ucq import UCQ


def redundant_indexes(ucq: UCQ) -> set[int]:
    """Indices of CQs contained in another CQ of the union.

    For mutually-equivalent CQs the earliest occurrence is kept. A CQ equal
    to an earlier one (duplicate) is likewise dropped.
    """
    redundant: set[int] = set()
    cqs = ucq.cqs
    for i, qi in enumerate(cqs):
        for j, qj in enumerate(cqs):
            if i == j or j in redundant:
                continue
            if is_contained(qi, qj):
                # qi adds nothing; drop it unless it is the canonical
                # representative of an equivalence class (earliest index).
                if not is_contained(qj, qi) or j < i:
                    redundant.add(i)
                    break
    return redundant


def remove_redundant_cqs(ucq: UCQ) -> UCQ:
    """The equivalent non-redundant union (Example 1's normalization)."""
    drop = redundant_indexes(ucq)
    kept = tuple(cq for i, cq in enumerate(ucq.cqs) if i not in drop)
    return UCQ(kept, ucq.name)


def is_redundant(ucq: UCQ) -> bool:
    """True iff some CQ of the union is contained in another."""
    return bool(redundant_indexes(ucq))


def _fold_step(cq: CQ) -> CQ | None:
    """Try to drop one atom while preserving equivalence; None if minimal."""
    if len(cq.atoms) == 1:
        return None
    for drop in range(len(cq.atoms)):
        remaining = cq.atoms[:drop] + cq.atoms[drop + 1 :]
        remaining_vars = {v for a in remaining for v in a.variable_set}
        if not cq.free <= remaining_vars:
            continue
        candidate = CQ(cq.head, remaining, cq.name)
        # candidate ⊆ cq via a head-fixing body-homomorphism cq -> candidate
        fix: dict[Var, Term] = {v: v for v in cq.free}
        if next(body_homomorphisms(cq, candidate, fix=fix), None) is not None:
            return candidate
    return None


def core_of(cq: CQ) -> CQ:
    """A core of *cq*: an equivalent CQ with a minimal set of atoms.

    Computed by repeatedly folding away atoms covered by a head-fixing
    endomorphism. The result is unique up to isomorphism (classical result);
    we return the first one found by the deterministic scan.
    """
    current = cq
    while True:
        smaller = _fold_step(current)
        if smaller is None:
            return current
        current = smaller


def minimize_ucq(ucq: UCQ) -> UCQ:
    """Core every CQ, then remove redundant members."""
    cored = UCQ(tuple(core_of(cq) for cq in ucq.cqs), ucq.name)
    return remove_redundant_cqs(cored)
