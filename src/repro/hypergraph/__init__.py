"""Hypergraph substrate: acyclicity, join trees, connex trees, free-paths.

Public surface of the hypergraph machinery the paper's Section 2 relies on.
"""

from .cliques import (
    find_hyperclique,
    hypergraph_cliques,
    is_hyperclique,
    query_hyperclique,
)
from .connex import (
    ExtConnexTree,
    build_ext_connex_tree,
    is_free_connex,
    is_s_connex,
    is_s_connex_criterion,
)
from .freepaths import (
    bypass_variables,
    chordless_paths,
    free_paths,
    has_free_path,
    subsequent_path_atoms,
)
from .hypergraph import Hypergraph
from .jointree import ATOM, PROJECTION, JoinTree, TreeNode, gyo_join_tree, is_acyclic, join_tree
from .render import ascii_connex_tree, ascii_tree
from .validation import is_acyclic_mst, validate_ext_connex_tree, validate_join_tree

__all__ = [
    "ATOM",
    "PROJECTION",
    "ExtConnexTree",
    "Hypergraph",
    "JoinTree",
    "TreeNode",
    "ascii_connex_tree",
    "ascii_tree",
    "build_ext_connex_tree",
    "bypass_variables",
    "chordless_paths",
    "find_hyperclique",
    "free_paths",
    "gyo_join_tree",
    "has_free_path",
    "hypergraph_cliques",
    "is_acyclic",
    "is_acyclic_mst",
    "is_free_connex",
    "is_hyperclique",
    "is_s_connex",
    "is_s_connex_criterion",
    "join_tree",
    "query_hyperclique",
    "subsequent_path_atoms",
    "validate_ext_connex_tree",
    "validate_join_tree",
]
