"""Hyperclique detection through cyclic-query evaluation (Theorem 3(3)).

The hyperclique hypothesis says a k-hyperclique in a (k-1)-uniform
hypergraph cannot be found in O(n^{k-1}) time. The canonical cyclic query

    Tetra<k>() <- R_1(x_2,...,x_k), R_2(x_1,x_3,...,x_k), ..., R_k(x_1,...,x_{k-1})

decides exactly that when each ``R_i`` holds every orientation of every
hyperedge: an answer assigns vertices to ``x_1..x_k`` whose every
(k-1)-subset is an edge. Brault-Baron's general reduction encodes this into
any cyclic CQ; we expose the canonical family, which is what the paper's
lower bounds (Lemma 15, Theorem 17) rest on, and verify it against the
brute-force finder of :mod:`repro.hypergraph.cliques`.
"""

from __future__ import annotations

from itertools import permutations
from typing import Callable, Iterable, Optional

from ..database.instance import Instance
from ..database.relation import Relation
from ..query.atoms import Atom
from ..query.cq import CQ
from ..query.terms import Var


def tetra_query(k: int, boolean: bool = False) -> CQ:
    """The Tetra<k> query: one atom per omitted variable.

    With ``boolean=False`` the head carries all variables (the witnessing
    hyperclique is enumerated); ``boolean=True`` gives the decision query.
    """
    if k < 3:
        raise ValueError("Tetra<k> needs k >= 3")
    xs = [Var(f"x{i}") for i in range(1, k + 1)]
    atoms = []
    for i in range(k):
        args = tuple(x for j, x in enumerate(xs) if j != i)
        atoms.append(Atom(f"R{i + 1}", args))
    head = () if boolean else tuple(xs)
    return CQ(head, tuple(atoms), f"Tetra{k}")


def encode_hypergraph(
    k: int, edges: Iterable[frozenset[int]]
) -> Instance:
    """All orientations of every (k-1)-edge, in every ``R_i``."""
    rows = set()
    for edge in edges:
        if len(edge) != k - 1:
            raise ValueError("expected a (k-1)-uniform hypergraph")
        for p in permutations(sorted(edge)):
            rows.add(p)
    instance = Instance()
    for i in range(1, k + 1):
        instance.set(f"R{i}", Relation(k - 1, set(rows)))
    return instance


def find_hyperclique_via_query(
    k: int,
    edges: Iterable[frozenset[int]],
    evaluator: Callable[[CQ, Instance], Iterable[tuple]],
) -> Optional[frozenset[int]]:
    """Find a k-hyperclique by evaluating Tetra<k> (the reduction)."""
    query = tetra_query(k)
    instance = encode_hypergraph(k, list(edges))
    for answer in evaluator(query, instance):
        if len(set(answer)) == k:
            return frozenset(answer)
    return None
