"""Database substrate: relations, instances, indexes, partitioning,
generators."""

from .generators import (
    boolean_matmul,
    chain_instance,
    edges_to_relation,
    er_graph,
    planted_clique_graph,
    planted_hyperclique,
    random_boolean_matrix,
    random_instance,
    random_instance_for,
    random_relation,
    random_uniform_hypergraph,
    triangles_of,
)
from .indexes import CountedGroupIndex, GroupIndex, MembershipIndex
from .instance import Instance
from .interner import Interner
from .partition import partition_instance, partition_rows
from .relation import Relation

__all__ = [
    "CountedGroupIndex",
    "GroupIndex",
    "Instance",
    "Interner",
    "MembershipIndex",
    "Relation",
    "boolean_matmul",
    "chain_instance",
    "edges_to_relation",
    "er_graph",
    "planted_clique_graph",
    "planted_hyperclique",
    "random_boolean_matrix",
    "random_instance",
    "random_instance_for",
    "random_relation",
    "partition_instance",
    "partition_rows",
    "random_uniform_hypergraph",
    "triangles_of",
]
