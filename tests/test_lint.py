"""The lint framework's self-tests: every rule fires on its seeded
corpus file, the clean file stays silent, suppression machinery works,
and — the enforced invariant — the repo itself lints clean."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.lint import (
    Finding,
    lint_paths,
    load_baseline,
    run_lint,
)

REPO = Path(__file__).resolve().parents[1]
CORPUS = REPO / "tests" / "lint_corpus"


def corpus_rules(name: str) -> set[str]:
    """Rule ids the named corpus file produces."""
    report = lint_paths([CORPUS / name], root=REPO)
    assert report.checked_files == 1
    return {f.rule for f in report.findings}


# ------------------------------------------------------------------ #
# every rule demonstrated by at least one seeded violation


def test_corpus_lock_order():
    assert "lock-order" in corpus_rules("corpus_lock_order.py")


def test_corpus_lock_cycle():
    rules = corpus_rules("corpus_lock_cycle.py")
    assert "lock-cycle" in rules
    # a cycle in a totally ranked hierarchy always contains a
    # descending edge, so lock-order fires too
    assert "lock-order" in rules


def test_corpus_lock_blocking():
    report = lint_paths([CORPUS / "corpus_lock_blocking.py"], root=REPO)
    blocking = [f for f in report.findings if f.rule == "lock-blocking"]
    # both time.sleep and .result() under the counters lock
    assert len(blocking) == 2


def test_corpus_lock_unknown():
    report = lint_paths([CORPUS / "corpus_lock_unknown.py"], root=REPO)
    unknown = [f for f in report.findings if f.rule == "lock-unknown"]
    assert len(unknown) == 2  # raw threading.Lock + unresolvable mutex


def test_corpus_wall_clock():
    assert "wall-clock" in corpus_rules("corpus_wall_clock.py")


def test_corpus_unseeded_random():
    report = lint_paths(
        [CORPUS / "corpus_unseeded_random.py"], root=REPO
    )
    hits = [f for f in report.findings if f.rule == "unseeded-random"]
    assert len(hits) == 2  # Random() without seed + random.random()


def test_corpus_builtin_hash():
    assert "builtin-hash" in corpus_rules("corpus_builtin_hash.py")


def test_corpus_shm_unguarded():
    assert "shm-unguarded" in corpus_rules("corpus_shm_unguarded.py")


def test_corpus_bare_except():
    assert corpus_rules("corpus_bare_except.py") == {"bare-except"}


def test_corpus_silent_except():
    assert corpus_rules("corpus_silent_except.py") == {"silent-except"}


def test_corpus_http_mapping():
    assert "http-mapping" in corpus_rules("corpus_http_mapping.py")


def test_corpus_clean_is_clean():
    assert corpus_rules("corpus_clean.py") == set()


def test_every_corpus_file_has_a_test():
    """No seeded-violation file silently drops out of the suite."""
    covered = {
        "corpus_lock_order.py",
        "corpus_lock_cycle.py",
        "corpus_lock_blocking.py",
        "corpus_lock_unknown.py",
        "corpus_wall_clock.py",
        "corpus_unseeded_random.py",
        "corpus_builtin_hash.py",
        "corpus_shm_unguarded.py",
        "corpus_bare_except.py",
        "corpus_silent_except.py",
        "corpus_http_mapping.py",
        "corpus_clean.py",
    }
    on_disk = {p.name for p in CORPUS.glob("corpus_*.py")}
    assert on_disk == covered


# ------------------------------------------------------------------ #
# suppression machinery


def test_inline_suppression(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "# lint-as: src/repro/_corpus/x.py\n"
        "import time\n"
        "t = time.time()  # lint: disable=wall-clock\n"
    )
    report = lint_paths([bad], root=tmp_path)
    assert report.ok
    assert [f.rule for f in report.suppressed] == ["wall-clock"]


def test_baseline_matching_survives_line_drift(tmp_path):
    src_v1 = (
        "# lint-as: src/repro/_corpus/x.py\n"
        "import time\n"
        "t = time.time()\n"
    )
    bad = tmp_path / "bad.py"
    bad.write_text(src_v1)
    report = lint_paths([bad], root=tmp_path)
    assert len(report.findings) == 1
    fp = report.findings[0].fingerprint

    baseline_file = tmp_path / "lint_baseline.json"
    baseline_file.write_text(
        json.dumps(
            {
                "version": 1,
                "entries": [
                    {"fingerprint": fp, "reason": "pre-existing, tracked"}
                ],
            }
        )
    )
    baseline = load_baseline(baseline_file)

    # shift the offending line down: fingerprint must still match
    bad.write_text(
        "# lint-as: src/repro/_corpus/x.py\n"
        "import time\n\n\n\n"
        "t = time.time()\n"
    )
    report = lint_paths([bad], root=tmp_path, baseline=baseline)
    assert report.ok
    assert [f.rule for f in report.baselined] == ["wall-clock"]


def test_baseline_entries_require_reasons(tmp_path):
    baseline_file = tmp_path / "lint_baseline.json"
    baseline_file.write_text(
        json.dumps({"version": 1, "entries": [{"fingerprint": "abc"}]})
    )
    with pytest.raises(ValueError, match="justification"):
        load_baseline(baseline_file)


def test_fingerprint_is_line_free():
    a = Finding("r", "p.py", 3, "m", "x = 1")
    b = Finding("r", "p.py", 99, "m", "x  =  1")
    assert a.fingerprint == b.fingerprint


def test_syntax_error_is_a_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    report = lint_paths([bad], root=tmp_path)
    assert [f.rule for f in report.findings] == ["syntax-error"]


# ------------------------------------------------------------------ #
# the enforced invariant: the repo lints clean


def test_repo_lints_clean():
    report = run_lint(REPO)
    assert report.ok, "\n" + report.render_human()
    assert report.checked_files > 50


def test_repo_baseline_is_loadable():
    baseline = load_baseline(REPO / "lint_baseline.json")
    assert isinstance(baseline, dict)


# ------------------------------------------------------------------ #
# repo hygiene enforced locally too (CI mirrors these)


def test_no_tracked_compiled_artifacts():
    """`.gitignore` keeps __pycache__/*.pyc out; nothing compiled may
    ever be committed (it pollutes grep and ships stale bytecode)."""
    import subprocess

    out = subprocess.run(
        ["git", "ls-files"],
        cwd=REPO,
        capture_output=True,
        text=True,
        check=True,
    )
    tracked = [
        line
        for line in out.stdout.splitlines()
        if line.endswith(".pyc") or "__pycache__" in line
    ]
    assert tracked == []


def test_gitignore_covers_compiled_artifacts():
    gitignore = (REPO / ".gitignore").read_text()
    assert "__pycache__/" in gitignore
    assert "*.pyc" in gitignore
