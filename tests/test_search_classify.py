"""Tests for the union-extension search and the classification engine."""

import pytest

from repro.catalog import all_examples, example
from repro.core import (
    Status,
    classify,
    classify_cq,
    find_free_connex_certificate,
    is_free_connex_ucq,
    lemma28_construction,
    lemma41_construction,
    unify_bodies,
    validate_certificate,
)
from repro.core.classify import CQStructure
from repro.query import parse_cq, parse_ucq


class TestClassifyCQ:
    def test_free_connex(self):
        c = classify_cq(parse_cq("Q(x, y) <- R(x, y), S(y, z)"))
        assert c.structure is CQStructure.FREE_CONNEX
        assert c.status is Status.TRACTABLE

    def test_acyclic_hard(self):
        c = classify_cq(parse_cq("Pi(x, y) <- A(x, z), B(z, y)"))
        assert c.structure is CQStructure.ACYCLIC_NON_FREE_CONNEX
        assert c.status is Status.INTRACTABLE
        assert c.hypotheses == ("mat-mul",)

    def test_cyclic_hard(self):
        c = classify_cq(parse_cq("Q(x) <- R(x, y), S(y, z), T(z, x)"))
        assert c.structure is CQStructure.CYCLIC
        assert c.hypotheses == ("hyperclique",)

    def test_self_join_escape_hatch(self):
        c = classify_cq(parse_cq("Q(x, y) <- R(x, z), R(z, y)"))
        assert c.status is Status.UNKNOWN
        assert not c.self_join_free


class TestCatalogueClassification:
    """Every worked example of the paper classifies as the paper states."""

    @pytest.mark.parametrize("entry", all_examples(), ids=lambda e: e.key)
    def test_matches_paper(self, entry):
        verdict = classify(entry.ucq)
        assert verdict.status.value == entry.expected, verdict.describe()

    @pytest.mark.parametrize(
        "key, statement_fragment",
        [
            ("example_2", "Theorem 12"),
            ("example_9", "Lemma 14"),
            ("example_13", "Theorem 12"),
            ("example_20", "Lemma 25"),
            ("example_21", "Theorem 12"),
            ("example_22", "Lemma 26"),
            ("example_31", "Example 31"),
            ("example_39", "Example 39"),
        ],
    )
    def test_statement_names_right_result(self, key, statement_fragment):
        verdict = classify(example(key).ucq)
        assert statement_fragment in verdict.statement

    def test_hypotheses_recorded(self):
        verdict = classify(example("example_20").ucq)
        assert "mat-mul" in verdict.hypotheses
        verdict = classify(example("example_22").ucq)
        assert "4-clique" in verdict.hypotheses

    def test_certificates_validate(self):
        for entry in all_examples():
            verdict = classify(entry.ucq)
            if verdict.tractable and verdict.certificate is not None:
                from repro.core import FreeConnexUCQCertificate

                if isinstance(verdict.certificate, FreeConnexUCQCertificate):
                    assert validate_certificate(
                        verdict.normalized, verdict.certificate
                    ) == []

    def test_example1_normalization_noted(self):
        verdict = classify(example("example_1").ucq)
        assert len(verdict.normalized.cqs) == 1
        assert "redundant" in verdict.explanation

    def test_catalog_consult_can_be_disabled(self):
        verdict = classify(example("example_39").ucq, consult_catalog=False)
        assert verdict.status is Status.UNKNOWN


class TestSearch:
    def test_example2_plan_shape(self):
        cert = find_free_connex_certificate(example("example_2").ucq)
        assert cert is not None
        plan_q1 = cert.plans[0]
        assert len(plan_q1.virtual_atoms) == 1
        provided = plan_q1.virtual_atoms[0].variable_set
        assert {str(v) for v in provided} == {"x", "z", "y"}
        assert plan_q1.virtual_atoms[0].witness.provider == 1

    def test_example13_recursive_depth(self):
        cert = find_free_connex_certificate(example("example_13").ucq)
        assert cert is not None
        assert max(p.depth() for p in cert.plans) >= 2  # genuine recursion

    def test_tractable_iff_expected(self):
        for entry in all_examples():
            found = is_free_connex_ucq(entry.ucq)
            if entry.expected == "tractable" and entry.key != "example_1":
                assert found, entry.key
            if entry.expected == "intractable":
                assert not found, entry.key

    def test_theorem4_trivial_plans(self):
        u = parse_ucq("Q1(x) <- R(x, y) ; Q2(x) <- S(x)")
        cert = find_free_connex_certificate(u)
        assert cert is not None
        assert all(p.is_trivial for p in cert.plans)


class TestBodyIsomorphicStrategies:
    def test_lemma28_on_example21(self):
        shared = unify_bodies(example("example_21").ucq)
        cert = lemma28_construction(shared)
        assert cert is not None
        assert validate_certificate(shared.ucq, cert) == []
        # both queries get the VP atom
        assert all(len(p.virtual_atoms) >= 1 for p in cert.plans)

    def test_lemma28_rejects_unguarded(self):
        shared = unify_bodies(example("example_20").ucq)
        assert lemma28_construction(shared) is None

    def test_lemma41_isolated_union(self):
        from repro.catalog import shared_body_ucq

        u = shared_body_ucq(
            "R1(x, z), R2(z, y), R3(y, e)",
            heads=[("x", "y", "e"), ("x", "z", "y")],
        )
        # free-path (x,z,y) of Q1 is union guarded ({x,z,y} ⊆ free(Q2),
        # {x,y} ⊆ free(Q1)) and isolated
        shared = unify_bodies(u)
        cert = lemma41_construction(shared)
        assert cert is not None
        assert validate_certificate(u, cert) == []

    def test_lemma41_rejects_example31(self):
        shared = unify_bodies(example("example_31").ucq)
        assert lemma41_construction(shared) is None


class TestClassifierLadderEdges:
    def test_single_free_connex(self):
        verdict = classify(parse_ucq("Q(x) <- R(x, y)"))
        assert verdict.tractable

    def test_single_cyclic(self):
        verdict = classify(parse_ucq("Q(x) <- R(x, y), S(y, z), T(z, x)"))
        assert verdict.intractable
        assert "hyperclique" in verdict.hypotheses

    def test_theorem4_branch(self):
        verdict = classify(parse_ucq("Q1(x) <- R(x, y) ; Q2(x) <- S(x)"))
        assert verdict.tractable
        assert verdict.statement == "Theorem 4"

    def test_theorem17_cyclic_pair(self):
        # two body-isomorphic *cyclic* queries: Theorem 17 applies
        u = parse_ucq(
            "Q1(x, y) <- R(x, y), S(y, u), T(u, x) ; "
            "Q2(x, y) <- R(y, x), S(x, u), T(u, y)"
        )
        assert u.all_intractable_cqs
        verdict = classify(u)
        assert verdict.intractable

    def test_self_join_union_unknown(self):
        u = parse_ucq(
            "Q1(x, y) <- R(x, z), R(z, y) ; Q2(x, y) <- R(x, y), R(y, w)"
        )
        verdict = classify(u)
        assert verdict.status is Status.UNKNOWN
        assert "self-join" in verdict.explanation

    def test_lemma15_cyclic_with_isomorphic_partner(self):
        # Example 18's Q1/Q2 pair alone: cyclic body-isomorphic
        u = parse_ucq(
            "Q1(x, y) <- R1(x, y), R2(y, u), R3(x, u) ; "
            "Q2(x, y) <- R1(y, v), R2(v, x), R3(y, x)"
        )
        verdict = classify(u)
        assert verdict.intractable
        assert "hyperclique" in verdict.hypotheses

    def test_theorem33_unguarded_nary(self):
        from repro.catalog import shared_body_ucq

        # three heads, none containing the whole triple {x, z, y}: the
        # free-path (x, z, y) of Q1 has no union guard
        u = shared_body_ucq(
            "R1(x, z), R2(z, y), R3(y, e)",
            heads=[("x", "y", "e"), ("x", "z", "e"), ("z", "y", "e")],
        )
        verdict = classify(u)
        assert verdict.intractable
        assert verdict.statement == "Theorem 33"

    def test_theorem29_tractable_direction_consistency(self):
        """For random body-isomorphic pairs: guards hold iff the search
        finds a certificate (Theorem 29 = Lemmas 25+26+28)."""
        from repro.catalog import shared_body_ucq
        import itertools

        bodies_and_vars = [
            ("R1(a, b), R2(b, c), R3(c, d)", "a b c d"),
            ("R1(a, b), R2(b, c)", "a b c"),
        ]
        import random

        rng = random.Random(42)
        for body, var_names in bodies_and_vars:
            names = var_names.split()
            for _trial in range(12):
                k = rng.randint(1, len(names) - 1)
                h1 = tuple(rng.sample(names, k))
                h2 = tuple(rng.sample(names, k))
                u = shared_body_ucq(body, heads=[h1, h2])
                shared = unify_bodies(u)
                from repro.core import pair_guards

                guarded = pair_guards(shared).all_guarded
                cert = find_free_connex_certificate(u)
                assert guarded == (cert is not None), (body, h1, h2)
