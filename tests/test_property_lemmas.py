"""Property tests for the paper's two workhorse lemmas.

* **Lemma 8 invariant** — the materialized virtual relation must contain
  the projection of the *target's* homomorphisms onto the atom's variables
  (the superset property DESIGN.md documents), across random instances of
  the tractable catalogue examples.
* **Lemma 14 invariant** — over the variable-tagged instance, the union's
  answers untag to exactly Q1's answers, for every self-join-free union
  where no other CQ body-maps into Q1.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import example, tractable_examples
from repro.core import UCQEnumerator, find_free_connex_certificate
from repro.database import random_instance_for
from repro.naive import answer_mappings, evaluate_cq, evaluate_ucq
from repro.query import Var, parse_ucq
from repro.query.homomorphism import has_body_homomorphism
from repro.reductions import tagged_instance, untag_answers


@settings(max_examples=30, deadline=None)
@given(st.sampled_from(["example_2", "example_13", "example_36"]), st.integers(0, 50))
def test_lemma8_materialization_superset(key, seed):
    """Every virtual relation contains the projection of the target's
    homomorphisms onto the atom's variables."""
    ucq = example(key).ucq
    certificate = find_free_connex_certificate(ucq)
    instance = random_instance_for(ucq, n_tuples=25, domain_size=3, seed=seed)
    enum = UCQEnumerator(ucq, instance, certificate=certificate)
    list(enum)  # drive all materializations

    for plan in certificate.plans:
        target_cq = ucq.cqs[plan.target]
        homs = list(answer_mappings(target_cq, instance))
        for va in plan.virtual_atoms:
            relation = enum._materialized[(va.witness, va.vars)]
            needed = {tuple(h[v] for v in va.vars) for h in homs}
            assert needed <= relation.tuples, (key, plan.target, va.vars)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000))
def test_lemma14_tagged_reduction_exact(master_seed):
    """Random self-join-free unions with a 'blocked' member: the tagged
    instance makes the union compute exactly that member's answers."""
    rng = random.Random(master_seed)
    # Q1: chain of private+shared symbols; Q2: uses a symbol Q1 lacks, so
    # no body-homomorphism from Q2 to Q1 can exist.
    length = rng.randint(2, 3)
    q1_body = ", ".join(f"E{i}(a{i}, a{i + 1})" for i in range(length))
    q2_body = "E0(a0, m), X(m, a%d)" % length
    head = f"a0, a{length}"
    ucq = parse_ucq(f"Q1({head}) <- {q1_body} ; Q2({head}) <- {q2_body}")
    q1, q2 = ucq.cqs
    assert not has_body_homomorphism(q2, q1)

    instance = random_instance_for(ucq, n_tuples=20, domain_size=4, seed=master_seed)
    sigma = tagged_instance(q1, instance)
    union_answers = evaluate_ucq(ucq, sigma)
    assert untag_answers(union_answers, ucq.head) == evaluate_cq(q1, instance)
    # and the blocked CQ is genuinely silent
    assert evaluate_cq(q2, sigma) == set()


@pytest.mark.parametrize("entry", tractable_examples(), ids=lambda e: e.key)
def test_certificate_plans_have_valid_providers(entry):
    """Structural invariant: every witness in every plan names a provider
    inside the union and carries a well-founded provider plan."""
    certificate = find_free_connex_certificate(entry.ucq)
    if certificate is None:  # example_1 is tractable only after reduction
        return
    for plan in certificate.plans:
        for witness in plan.all_witnesses():
            assert 0 <= witness.provider < len(entry.ucq.cqs)
            assert witness.provider_plan.depth() < len(entry.ucq.cqs) + 4
