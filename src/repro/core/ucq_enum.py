"""The UCQ enumerator of Theorem 12.

Given a free-connex UCQ certificate (one union-extension plan per CQ), the
enumerator evaluates each extended CQ with the CDY algorithm after
*materializing* its virtual atoms per Lemma 8:

* for a virtual atom provided by ``Qj`` (extended by its own plan) via
  ``(h, V2, S)``, run CDY on the provider with ``S`` as the enumeration set;
* every enumerated S-assignment is extended to a full homomorphism (the
  tree walk of Lemma 8) and its free-variable restriction is **emitted as an
  answer of the union** — this is what pays for the materialization;
* the assignment's ``V2``-part, translated through ``h^{-1}`` (skipping
  inconsistent preimages), becomes one tuple of the virtual relation.

The materialized relation is ``translate(Q_j(I)|V2)``, a superset of the
exact ``Q_i(I)|V1`` of Lemma 8; the extra tuples are filtered by the join
with the target's own atoms, and the relation's size stays bounded by the
number of answers emitted while building it, so Theorem 12's amortization is
preserved (see DESIGN.md).

Each answer is produced at most a constant number of times (once per query
plus once per virtual atom served); the Cheater's Lemma (a global seen-set,
optionally with paced release) turns the stream into constant-delay
enumeration. ``enumerate_ucq`` is the one-call public entry point.
"""

from __future__ import annotations

from typing import Iterator

from ..database.instance import Instance
from ..database.relation import Relation
from ..enumeration.cheaters import CheatersEnumerator
from ..enumeration.steps import StepCounter, counter_or_null
from ..exceptions import ClassificationError, EnumerationError
from ..query.minimize import remove_redundant_cqs
from ..query.terms import Var
from ..query.ucq import UCQ
from ..yannakakis.cdy import CDYEnumerator
from .certificates import FreeConnexUCQCertificate
from .extension import ExtensionPlan, ProvidesWitness, extended_cq, virtual_symbol
from .search import SearchBudget, find_free_connex_certificate


class UCQEnumerator:
    """Theorem 12's evaluation of a free-connex UCQ.

    Answers are tuples in the UCQ's canonical head order, without
    duplicates. Construction performs no heavy work; everything happens
    lazily inside iteration so that materialization cost is paid while
    answers flow.
    """

    def __init__(
        self,
        ucq: UCQ,
        instance: Instance,
        certificate: FreeConnexUCQCertificate | None = None,
        counter: StepCounter | None = None,
        budget: SearchBudget | None = None,
        emit_provider_answers: bool = True,
    ) -> None:
        self.head = ucq.head  # canonical answer order of the *original* union
        self.instance = instance
        self.counter = counter_or_null(counter)
        self.emit_provider_answers = emit_provider_answers
        if certificate is None:
            # normalize first: a redundant CQ (Example 1) may be the only
            # obstacle to free-connexity, and removing it preserves answers
            ucq = remove_redundant_cqs(ucq)
            certificate = find_free_connex_certificate(ucq, budget)
            if certificate is None:
                raise ClassificationError(
                    "UCQ is not known to be free-connex; Theorem 12 does not apply"
                )
        self.ucq = ucq
        self.certificate = certificate
        self._materialized: dict[tuple, Relation] = {}

    # ------------------------------------------------------------------ #

    def _materialize(
        self, witness: ProvidesWitness, atom_vars: tuple[Var, ...]
    ) -> Iterator[tuple]:
        """Build the virtual relation for one witness, yielding the union
        answers produced along the way. The relation lands in the memo
        keyed by (witness, atom_vars)."""
        key = (witness, atom_vars)
        if key in self._materialized:
            return
        provider_plan = witness.provider_plan
        # yield-through the materializations the provider itself needs
        yield from self._materializations_of(provider_plan)
        ext_query, ext_instance = self._extended_pair(provider_plan)

        enum = CDYEnumerator(
            ext_query,
            ext_instance,
            s=witness.s,
            counter=self.counter,
        )
        h = witness.hom_dict
        preimages: dict[Var, list[Var]] = {}
        for v1 in atom_vars:
            preimages[v1] = [v2 for v2 in witness.v2 if h[v2] == v1]
            if not preimages[v1]:
                raise EnumerationError(
                    f"witness provides no preimage for {v1} (invalid certificate)"
                )
        order = self.head
        rows: set[tuple] = set()
        for assignment in enum.assignments():
            self.counter.tick()
            if self.emit_provider_answers:
                full = enum.extend(assignment)
                yield tuple(full[v] for v in order)
            row = []
            consistent = True
            for v1 in atom_vars:
                values = {assignment[v2] for v2 in preimages[v1]}
                if len(values) != 1:
                    consistent = False
                    break
                row.append(next(iter(values)))
            if consistent:
                rows.add(tuple(row))
        self._materialized[key] = Relation(len(atom_vars), rows)

    def _materializations_of(self, plan: ExtensionPlan) -> Iterator[tuple]:
        """Materialize every virtual atom of *plan* (recursively)."""
        for va in plan.virtual_atoms:
            yield from self._materialize(va.witness, va.vars)

    def _extended_pair(self, plan: ExtensionPlan):
        """(extended CQ, instance with its virtual relations).

        Assumes the plan's materializations are already in the memo, except
        on the first call where they may be missing (the caller interleaves
        :meth:`_materializations_of` first).
        """
        ext = extended_cq(self.ucq, plan)
        extra: dict[str, Relation] = {}
        for k, va in enumerate(plan.virtual_atoms):
            key = (va.witness, va.vars)
            rel = self._materialized.get(key)
            if rel is None:
                rel = Relation(len(va.vars))
            extra[virtual_symbol(plan.target, k)] = rel
        return ext, self.instance.extended(extra)

    # ------------------------------------------------------------------ #

    def raw_stream(self) -> Iterator[tuple]:
        """All answers with bounded duplication (pre-Lemma-5 stream)."""
        order = self.head
        for index, plan in enumerate(self.certificate.plans):
            yield from self._materializations_of(plan)
            ext_query, ext_instance = self._extended_pair(plan)
            enum = CDYEnumerator(
                ext_query,
                ext_instance,
                output_order=order,
                counter=self.counter,
            )
            yield from enum

    def __iter__(self) -> Iterator[tuple]:
        """Deduplicated answers (the Cheater's Lemma lookup table)."""
        seen: set[tuple] = set()
        for answer in self.raw_stream():
            if answer not in seen:
                seen.add(answer)
                self.counter.tick()
                yield answer

    def paced(
        self, preprocessing_budget: int | None = None, delay_budget: int | None = None
    ) -> CheatersEnumerator:
        """The full Lemma 5 discipline: paced constant-delay releases.

        Default budgets follow the lemma's arithmetic: the number of
        "linear" episodes is one per query plus one per virtual atom, each
        costing O(||I||); the multiplicity is the same constant.
        """
        episodes = len(self.certificate.plans) + sum(
            len(p.virtual_atoms) for p in self.certificate.plans
        )
        size = max(1, self.instance.size_in_integers())
        if preprocessing_budget is None:
            # n * p(x): one linear episode per query and per virtual atom,
            # each covered by a generous constant times ||I||
            preprocessing_budget = 8 * episodes * size
        if delay_budget is None:
            # m * d(x): constant multiplicity times the constant per-answer cost
            delay_budget = 16 * max(1, episodes)
        return CheatersEnumerator(
            self.raw_stream_deduped(),
            self.counter,
            preprocessing_budget=preprocessing_budget,
            delay_budget=delay_budget,
        )

    def raw_stream_deduped(self) -> Iterator[tuple]:
        seen: set[tuple] = set()
        for answer in self.raw_stream():
            if answer not in seen:
                seen.add(answer)
                yield answer


def enumerate_ucq(
    ucq: UCQ,
    instance: Instance,
    certificate: FreeConnexUCQCertificate | None = None,
    counter: StepCounter | None = None,
) -> Iterator[tuple]:
    """Enumerate a free-connex UCQ's answers (Theorem 12)."""
    yield from UCQEnumerator(ucq, instance, certificate, counter)
