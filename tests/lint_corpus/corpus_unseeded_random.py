# lint-as: src/repro/_corpus/unseeded_random.py
"""Seeded violation: the shared unseeded generator and a seedless
random.Random()."""

import random


def roll() -> float:
    rng = random.Random()  # unseeded-random (no seed argument)
    return random.random() + rng.random()  # unseeded-random (module fn)
