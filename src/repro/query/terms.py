"""Terms: variables and constants.

The paper's queries range over a set ``var`` of variables disjoint from the
constants ``dom``. We model a term as either a :class:`Var` (named variable)
or a :class:`Const` (wrapper around an arbitrary hashable Python value).
Both are immutable and hashable so they can live in frozensets and dict keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Union


@dataclass(frozen=True, slots=True, order=True)
class Var:
    """A query variable, identified by its name."""

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


@dataclass(frozen=True, slots=True)
class Const:
    """A constant appearing in a query atom (rare in the paper, supported here)."""

    value: Hashable

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


Term = Union[Var, Const]


def var(name: str) -> Var:
    """Shorthand constructor for a single variable."""
    return Var(name)


def variables(names: str | Iterable[str]) -> tuple[Var, ...]:
    """Build a tuple of variables from a space-separated string or iterable.

    >>> variables("x y z")
    (Var('x'), Var('y'), Var('z'))
    """
    if isinstance(names, str):
        names = names.split()
    return tuple(Var(n) for n in names)


def is_var(term: object) -> bool:
    """True iff *term* is a variable."""
    return isinstance(term, Var)


def is_const(term: object) -> bool:
    """True iff *term* is a constant."""
    return isinstance(term, Const)


def term_str(term: Term) -> str:
    """Render a term the way the parser would read it back."""
    return str(term)
