"""T33/T35 — union guards for n body-isomorphic CQs.

Claims regenerated:
* Example 31 (k = 4): every free-path is union guarded but none is
  isolated — Theorem 35 does not apply, Theorem 33 does not fire, and the
  paper's ad-hoc 4-clique reduction decides it (catalogue transfer);
* a guarded-and-isolated family classifies tractable with a Lemma 41
  certificate;
* an unguarded n-ary family is intractable by Theorem 33.
"""

import pytest

from repro.catalog import example, shared_body_ucq
from repro.core import (
    Status,
    all_guarded_and_isolated,
    classify,
    is_isolated,
    is_union_guarded,
    lemma41_construction,
    unify_bodies,
    validate_certificate,
)


def test_example31_guard_profile(benchmark):
    ucq = example("example_31").ucq

    def analyze():
        shared = unify_bodies(ucq)
        paths = shared.all_free_paths()
        return shared, [
            (owner, tuple(map(str, p)), is_union_guarded(shared, p),
             is_isolated(shared, owner, p))
            for owner, p in paths
        ]

    shared, rows = benchmark(analyze)
    assert rows
    assert all(guarded for _o, _p, guarded, _i in rows)
    assert not any(isolated for _o, _p, _g, isolated in rows)
    verdict = classify(ucq)
    assert verdict.intractable and "Example 31" in verdict.statement
    benchmark.extra_info["free_paths"] = rows


def test_example31_reduction_executable(benchmark):
    """The ad-hoc reduction behind Example 31's verdict, run for real:
    k-clique detection through the star union, against brute force."""
    from repro.database import planted_clique_graph
    from repro.naive import evaluate_ucq
    from repro.reductions import detect_kclique_star, kcliques_reference

    edges, _ = planted_clique_graph(11, 0.12, 4, seed=31)

    witness = benchmark(lambda: detect_kclique_star(4, edges, evaluate_ucq))

    assert witness is not None
    assert kcliques_reference(4, edges)
    benchmark.extra_info["witness"] = witness


def test_theorem35_guarded_isolated_family(benchmark):
    ucq = shared_body_ucq(
        "R1(x, z), R2(z, y), R3(y, e)",
        heads=[("x", "y", "e"), ("x", "z", "y")],
    )

    def construct():
        shared = unify_bodies(ucq)
        assert all_guarded_and_isolated(shared)
        return lemma41_construction(shared)

    certificate = benchmark(construct)
    assert certificate is not None
    assert validate_certificate(ucq, certificate) == []
    assert classify(ucq).tractable


def test_theorem33_unguarded_family(benchmark):
    ucq = shared_body_ucq(
        "R1(x, z), R2(z, y), R3(y, e)",
        heads=[("x", "y", "e"), ("x", "z", "e"), ("z", "y", "e")],
    )

    verdict = benchmark(classify, ucq)

    assert verdict.status is Status.INTRACTABLE
    assert verdict.statement == "Theorem 33"
    benchmark.extra_info["statement"] = verdict.statement


def test_longer_guard_trees(benchmark):
    """A length-4 free-path guarded at two levels (Lemma 40's tree)."""
    ucq = shared_body_ucq(
        "R1(a, m1), R2(m1, m2), R3(m2, b), R4(b, e)",
        heads=[("a", "b", "e"), ("a", "m1", "b"), ("m1", "m2", "b")],
    )

    verdict = benchmark(classify, ucq)

    # guarded and isolated -> tractable via the Lemma 41 construction
    assert verdict.tractable, verdict.describe()
    benchmark.extra_info["statement"] = verdict.statement
