"""The fused single-pass cold preprocessing pipeline.

The classical CDY preprocessing runs as four separate phases — grounding,
node-relation materialization, the two Yannakakis semijoin sweeps, and
index construction — each of which re-projects and re-hashes every row
(:func:`~repro.yannakakis.reducer.full_reduce` even re-sorts the shared
variables per ``semijoin`` call). This module fuses them over interned
columnar relations (:func:`~repro.yannakakis.grounding.ground_atoms_columnar`).

Every node's rows are stored *pre-split* into ``(key, residual)`` pairs,
where the key covers the variables shared with the node's parent and the
residual covers the rest. One grouping dict per node —
``{key: [residuals]}`` — then serves every role the classical pipeline
rebuilt separately:

* **materialize + up-sweep + group** — one bottom-up pass. Atom nodes
  stream ``(key, residual)`` pairs straight off the grounded id columns via
  ``zip``, with the leaves-to-root semijoin applied as a C-level filter:
  each child contributes ``map(child_groups.__contains__, zip(*shared
  columns))``, and :func:`itertools.compress` drops the failing rows before
  any per-row Python code runs. Projection nodes materialize from their
  source child's *group keys* (a projection node's variables are exactly
  the variables its source shares with it, so the source grouping's key set
  *is* the projection — group-granular, no row scan, no dedup set).
* **down-sweep** — one top-down pass at *group* granularity: a node's group
  survives iff its key appears among the parent's final rows projected onto
  the edge's shared variables. The projection is taken from the parent's
  group keys or residual lists with C-level ``set``/``map`` operations, and
  when the parent's own grouping key coincides with the shared variables,
  its group dict doubles as the surviving key set outright.
* **index build** — by the running-intersection property the key variables
  are exactly the "bound" variables of the CDY enumeration and extension
  plans, and the residuals are exactly the "new" values, so the surviving
  grouping dicts *are* the final per-node indexes, adopted verbatim.

To spare the enumeration hot path any id translation, nodes of the *top
subtree* (``decode_top``) are materialized directly in value space: their
data columns are decoded once with a C-level ``map`` over the interner's
table while the up-sweep probes keep reading the id columns. The top
subtree is upward-closed, so value-space and id-space nodes only meet along
a top-parent/lower-child edge, where the (much smaller) projected key set
is translated through the interner instead of any per-row work.

Each node's shared-key grouping is therefore computed exactly once and
reused across the up-sweep, the down-sweep and the final index build.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from itertools import chain, compress
from operator import and_

from ..database.indexes import tuple_selector
from ..database.interner import Interner
from ..enumeration.steps import StepCounter, tick_or_none
from ..hypergraph.jointree import ATOM, JoinTree
from ..query.terms import Var
from .grounding import ColumnarAtom

#: shared residual list for residual-free groups (never mutated)
_UNIT: tuple = ((),)


@dataclass
class FusedNode:
    """One join-tree node's fully reduced relation, grouped and split.

    ``groups`` maps each row's projection onto ``key_vars`` (the variables
    shared with the node's parent, canonical str-sorted order) to the list
    of residuals — the row's values at ``res_vars`` (the remaining
    variables, canonical order). ``key + residual`` therefore carries the
    full row over ``key_vars + res_vars``; ``vars`` (all variables, sorted)
    relates that layout to the node-variable order used elsewhere.
    ``decoded`` tells whether entries are raw values (top-subtree nodes) or
    interned ids.
    """

    vars: tuple[Var, ...]
    key_vars: tuple[Var, ...]
    res_vars: tuple[Var, ...]
    key_positions: tuple[int, ...]
    res_positions: tuple[int, ...]
    groups: dict[tuple, list[tuple]]
    decoded: bool = False

    @property
    def row_count(self) -> int:
        return sum(len(rows) for rows in self.groups.values())


@dataclass
class FusedReduction:
    """The fused pipeline's output: per-node reduced groupings."""

    nodes: dict[int, FusedNode]
    nonempty: bool


def node_key_split(
    tree: JoinTree, v: int
) -> tuple[tuple[Var, ...], tuple[Var, ...], tuple[Var, ...]]:
    """``(all vars, key vars, residual vars)`` of node *v*, canonical order.

    The key covers the variables shared with the node's parent (str-sorted,
    like everything else in the fused layout), the residual the rest; the
    root's key is empty. Shared by the fused and parallel pipelines so the
    split — which both the groupings and the CDY plan adoption rely on —
    can never drift between them.
    """
    vars_v = tuple(sorted(tree.nodes[v].vars, key=str))
    parent = tree.parent[v]
    if parent is None:
        key_vars: tuple[Var, ...] = ()
    else:
        parent_vars = tree.nodes[parent].vars
        key_vars = tuple(x for x in vars_v if x in parent_vars)
    key_set = set(key_vars)
    res_vars = tuple(x for x in vars_v if x not in key_set)
    return vars_v, key_vars, res_vars


def down_sweep(
    tree: JoinTree,
    nodes: dict[int, FusedNode],
    interner: Interner,
    tick,
) -> bool:
    """The top-down sweep at group granularity, over already up-swept
    nodes; returns the nonempty verdict. A node's group survives iff its
    key appears among the parent's final rows projected onto the edge's
    shared variables (:func:`_parent_key_set`, cached per edge shape).
    Shared by the fused and parallel pipelines.
    """
    projected: dict[tuple[int, tuple, bool], object] = {}
    nonempty = True
    for v in tree.topdown_order():
        parent = tree.parent[v]
        fn = nodes[v]
        if parent is not None and fn.groups:
            allowed = _parent_key_set(
                nodes[parent], parent, fn, projected, interner, tick
            )
            fn.groups = {
                k: rows for k, rows in fn.groups.items() if k in allowed
            }
            if tick is not None:
                tick(len(fn.groups))
        if not fn.groups:
            nonempty = False
    return nonempty


def fused_reduce(
    tree: JoinTree,
    grounded: list[ColumnarAtom],
    interner: Interner,
    counter: StepCounter | None = None,
    decode_top: frozenset[int] | set[int] = frozenset(),
) -> FusedReduction:
    """Materialize, fully reduce and group every node of *tree* in two
    passes over interned columnar ground atoms.

    Equivalent to building :class:`~repro.yannakakis.reducer.NodeRelation`
    per node and running :func:`~repro.yannakakis.reducer.full_reduce`
    (the differential suite asserts exactly that), but each node's rows are
    touched once on the way up and its groups once on the way down. Nodes
    in *decode_top* (which must be upward-closed — the CDY top subtree is)
    come out in value space, the rest in id space.
    """
    tick = tick_or_none(counter)
    nodes: dict[int, FusedNode] = {}

    # ---- bottom-up: materialize + up-sweep semijoin + group ----------- #
    for v in tree.bottomup_order():
        nodes[v] = materialize_node(
            tree, v, nodes, grounded, interner, v in decode_top, tick
        )

    # ---- top-down: down-sweep at group granularity -------------------- #
    return FusedReduction(nodes, down_sweep(tree, nodes, interner, tick))


def materialize_node(
    tree: JoinTree,
    v: int,
    nodes: dict[int, FusedNode],
    grounded: list[ColumnarAtom | None],
    interner: Interner,
    decoded: bool,
    tick,
) -> FusedNode:
    """Materialize + up-sweep + group one node of a bottom-up pass.

    The per-node body of :func:`fused_reduce`, exposed so the fragment-aware
    build (:mod:`repro.engine.fragments`) can run the identical pass while
    substituting cached :class:`FusedNode` groupings for whole subtrees —
    *nodes* must already hold every child of *v* (cached or freshly built),
    and *grounded* may carry ``None`` for atoms covered by an adopted
    subtree (they are never read).
    """
    node = tree.nodes[v]
    vars_v, key_vars, res_vars = node_key_split(tree, v)
    key_positions = tuple(vars_v.index(x) for x in key_vars)
    res_positions = tuple(vars_v.index(x) for x in res_vars)

    # the up-sweep: membership of each row's projection in every
    # (already reduced) child's group keys. A child's grouping is keyed
    # by its variables shared with v, in the same canonical order the
    # probes built here produce. A child sharing no variables only
    # gates on non-emptiness (constant-folded here).
    source = node.source if node.kind != ATOM else None
    checks: list[tuple[tuple[Var, ...], FusedNode]] = []
    alive = True
    for c in tree.children[v]:
        if c == source:
            continue  # projected rows match their source by construction
        child_vars = tree.nodes[c].vars
        shared = tuple(x for x in vars_v if x in child_vars)
        if not shared:
            if not nodes[c].groups:
                alive = False
            continue
        checks.append((shared, nodes[c]))

    if not alive:
        groups: dict[tuple, list[tuple]] = {}
    elif node.kind == ATOM:
        g = grounded[node.atom_index]
        if tick is not None:
            tick(g.row_count)
        groups = _materialize_atom(
            g, key_vars, res_vars, checks, interner.values if decoded else None
        )
    else:
        src = nodes[node.source]
        if tick is not None:
            tick(len(src.groups))
        groups = _materialize_projection(
            src, vars_v, key_vars, res_vars, checks, decoded, interner
        )
    return FusedNode(
        vars_v,
        key_vars,
        res_vars,
        key_positions,
        res_positions,
        groups,
        decoded,
    )


def _atom_check_filter(
    g: ColumnarAtom,
    checks: list[tuple[tuple[Var, ...], FusedNode]],
    values: list,
):
    """A C-level row-survival iterator for an atom's up-sweep checks.

    Each check contributes ``map(child_groups.__contains__, zip(*shared
    columns))`` — one bool per row, computed without touching Python-level
    code (columns are decoded first when the child grouping holds values);
    multiple checks are AND-folded with ``map(operator.and_, ...)``.
    """
    index_of = g.vars.index
    probes = []
    for shared, child in checks:
        cols = [g.columns[index_of(x)] for x in shared]
        if child.decoded:
            cols = [list(map(values.__getitem__, col)) for col in cols]
        probes.append(map(child.groups.__contains__, zip(*cols)))
    sel_iter = probes[0]
    for extra in probes[1:]:
        sel_iter = map(and_, sel_iter, extra)
    return sel_iter


def _materialize_atom(
    g: ColumnarAtom,
    key_vars: tuple[Var, ...],
    res_vars: tuple[Var, ...],
    checks: list[tuple[tuple[Var, ...], FusedNode]],
    values: list | None,
) -> dict[tuple, list[tuple]]:
    """Group one grounded atom's id columns by the key split, applying the
    up-sweep checks as a C-level compress filter. With *values* the data
    columns are decoded (C-level ``map``) before grouping; the check probes
    always read the id columns."""
    if not key_vars and not res_vars:  # variable-free atom
        return {(): list(_UNIT)} if g.row_count else {}
    index_of = g.vars.index

    def data_col(x: Var) -> list:
        col = g.columns[index_of(x)]
        if values is not None:
            return list(map(values.__getitem__, col))
        return col

    key_cols = [data_col(x) for x in key_vars]
    res_cols = [data_col(x) for x in res_vars]

    if not key_vars:
        # root-side atom: a single group; the whole pass stays in C
        rows_iter = zip(*res_cols)
        if checks:
            rows_iter = compress(
                rows_iter, _atom_check_filter(g, checks, values)
            )
        rows = list(rows_iter)
        return {(): rows} if rows else {}
    if not res_vars:
        # residual-free: rows are distinct, so keys are distinct
        keys_iter = zip(*key_cols)
        if checks:
            keys_iter = compress(
                keys_iter, _atom_check_filter(g, checks, values)
            )
        return {k: _UNIT for k in keys_iter}
    pairs = zip(zip(*key_cols), zip(*res_cols))
    if checks:
        pairs = compress(pairs, _atom_check_filter(g, checks, values))
    groups: defaultdict[tuple, list] = defaultdict(list)
    for k, r in pairs:
        groups[k].append(r)
    return dict(groups)


def _materialize_projection(
    src: FusedNode,
    vars_v: tuple[Var, ...],
    key_vars: tuple[Var, ...],
    res_vars: tuple[Var, ...],
    checks: list[tuple[tuple[Var, ...], FusedNode]],
    decoded: bool,
    interner: Interner,
) -> dict[tuple, list[tuple]]:
    """Materialize a projection node from its source child's group keys.

    The node's variables are exactly the variables its source shares with
    it, so the source grouping's (distinct) keys are the projected rows —
    a group-granular pass over far fewer entries than rows; no row scan,
    no dedup set. Space changes (id source feeding a value-space top node,
    probes against children in either space) are translated per group key.
    """
    if src.key_vars != vars_v:  # pragma: no cover - structural invariant
        raise AssertionError(
            f"projection node vars {vars_v} != source grouping key "
            f"{src.key_vars}"
        )
    rows_iter = iter(src.groups)
    if checks:
        # probe in the source's space, against each child's own space
        probes = []
        for shared, child in checks:
            sel = (
                None
                if shared == vars_v
                else tuple_selector(tuple(vars_v.index(x) for x in shared))
            )
            probes.append((sel, child))
        values = interner.values
        id_of = interner.ids.get

        def survives(row: tuple) -> bool:
            for sel, child in probes:
                probe_row = row if sel is None else sel(row)
                if child.decoded != src.decoded:
                    if child.decoded:  # id row against value-space child
                        probe_row = tuple(map(values.__getitem__, probe_row))
                    else:  # value row against id-space child
                        probe_row = tuple(map(id_of, probe_row))
                if probe_row not in child.groups:
                    return False
            return True

        rows_iter = filter(survives, rows_iter)
    if decoded and not src.decoded:
        getv = interner.values.__getitem__
        rows_iter = (tuple(map(getv, row)) for row in rows_iter)
    # src decoded implies this node decoded: the top subtree is
    # upward-closed, and a source is this node's child
    if key_vars == vars_v:  # residual-free projection
        return {k: _UNIT for k in rows_iter}
    if not key_vars:  # root-side projection: one group of residuals
        rows = list(rows_iter)
        return {(): rows} if rows else {}
    ksel = tuple_selector(tuple(vars_v.index(x) for x in key_vars))
    rsel = tuple_selector(tuple(vars_v.index(x) for x in res_vars))
    groups: defaultdict[tuple, list] = defaultdict(list)
    for row in rows_iter:
        groups[ksel(row)].append(rsel(row))
    return dict(groups)


def _parent_key_set(
    pn: FusedNode,
    parent: int,
    fn: FusedNode,
    projected: dict,
    interner: Interner,
    tick,
):
    """The set of a parent's final rows projected onto a child's grouping
    key variables, in the *child's* space, taken from the cheapest
    available source: the parent's group dict itself, its keys, its
    residual lists, or — only when the shared variables straddle the
    split — a per-row fallback. Cached per (parent, shared, space)."""
    shared = fn.key_vars
    if shared == pn.key_vars and fn.decoded == pn.decoded:
        return pn.groups  # dict membership doubles as the key set
    cache_key = (parent, shared, fn.decoded)
    allowed = projected.get(cache_key)
    if allowed is not None:
        return allowed
    key_set = set(pn.key_vars)
    if shared == pn.key_vars:
        allowed = set(pn.groups)
        if tick is not None:
            tick(len(pn.groups))
    elif all(v in key_set for v in shared):
        sel = tuple_selector(tuple(pn.key_vars.index(v) for v in shared))
        allowed = set(map(sel, pn.groups.keys()))
        if tick is not None:
            tick(len(pn.groups))
    elif shared == pn.res_vars:
        allowed = set(chain.from_iterable(pn.groups.values()))
        if tick is not None:
            tick(pn.row_count)
    elif all(v in set(pn.res_vars) for v in shared):
        sel = tuple_selector(tuple(pn.res_vars.index(v) for v in shared))
        allowed = set(
            map(sel, chain.from_iterable(pn.groups.values()))
        )
        if tick is not None:
            tick(pn.row_count)
    else:
        concat = pn.key_vars + pn.res_vars
        sel = tuple_selector(tuple(concat.index(v) for v in shared))
        allowed = set()
        add = allowed.add
        for k, rows in pn.groups.items():
            for r in rows:
                add(sel(k + r))
        if tick is not None:
            tick(pn.row_count)
    if fn.decoded != pn.decoded:
        # translate the (row-projection, hence small) key set into the
        # child's space. The top subtree is upward-closed, so only a
        # value-space parent meeting an id-space child occurs.
        getv = interner.values.__getitem__
        id_of = interner.ids.get
        convert = id_of if pn.decoded else getv
        allowed = {tuple(map(convert, key)) for key in allowed}
    projected[cache_key] = allowed
    return allowed
