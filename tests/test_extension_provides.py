"""Tests for union extensions (Def. 10), the provides relation (Def. 7),
and certificate validation."""

import pytest

from repro.core import (
    ExtensionPlan,
    ProvidesWitness,
    VirtualAtom,
    extended_cq,
    extension_edges,
    maximal_connex_subsets,
    provided_sets,
    trivial_plan,
    validate_plan,
    validate_witness,
)
from repro.core.extension import virtual_symbol
from repro.query import Var, parse_ucq, variables

EX2 = parse_ucq(
    "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w) ; "
    "Q2(x, y, w) <- R1(x, y), R2(y, w)"
)


class TestMaximalConnexSubsets:
    def test_free_connex_query_gives_full_free(self):
        edges = [a.variable_set for a in EX2[1].atoms]
        subsets = maximal_connex_subsets(edges, EX2[1].free)
        assert frozenset(variables("x y w")) in subsets

    def test_matrix_query_gives_endpoints_only(self):
        from repro.query import parse_cq

        q = parse_cq("Pi(x, y) <- A(x, z), B(z, y)")
        subsets = maximal_connex_subsets([a.variable_set for a in q.atoms], q.free)
        # neither {x,y} (free-path) but each endpoint alone is S-connex
        assert frozenset(variables("x y")) not in subsets
        assert {frozenset({Var("x")}), frozenset({Var("y")})} == set(subsets)

    def test_cyclic_body_gives_nothing(self):
        from repro.query import parse_cq

        q = parse_cq("Q(x) <- R(x, y), S(y, z), T(z, x)")
        # the cyclic hypergraph is not even {}-connex
        assert maximal_connex_subsets([a.variable_set for a in q.atoms], q.free) == []


class TestProvidedSets:
    def test_example2_provides_xzy(self):
        witnesses = list(provided_sets(EX2, 0, 1, trivial_plan(1)))
        provided = {w.provided for w in witnesses}
        assert frozenset(variables("x z y")) in provided

    def test_example9_provides_nothing(self):
        ex9 = parse_ucq(
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w) ; "
            "Q2(x, y, w) <- R1(x, y), R2(y, w), R4(y)"
        )
        assert list(provided_sets(ex9, 0, 1, trivial_plan(1))) == []

    def test_self_provision_allowed(self):
        # a free-connex CQ provides its own free variables to itself
        u = parse_ucq("Q1(x, y) <- R(x, y) ; Q2(x, y) <- S(x, y)")
        witnesses = list(provided_sets(u, 0, 0, trivial_plan(0)))
        assert any(w.provided == frozenset(variables("x y")) for w in witnesses)

    def test_witness_restrict(self):
        witnesses = list(provided_sets(EX2, 0, 1, trivial_plan(1)))
        big = next(w for w in witnesses if w.provided == frozenset(variables("x z y")))
        small = big.restrict(frozenset(variables("x z")))
        assert small.provided == frozenset(variables("x z"))
        assert small.v2 < big.v2
        with pytest.raises(ValueError):
            big.restrict(frozenset(variables("x q")))


class TestExtensionPlan:
    def _example2_plan(self) -> ExtensionPlan:
        witnesses = list(provided_sets(EX2, 0, 1, trivial_plan(1)))
        w = next(w for w in witnesses if w.provided == frozenset(variables("x z y")))
        atom = VirtualAtom(tuple(sorted(w.provided, key=str)), w)
        return ExtensionPlan(0, (atom,))

    def test_extended_cq_gains_virtual_atom(self):
        plan = self._example2_plan()
        ext = extended_cq(EX2, plan)
        assert len(ext.atoms) == 4
        assert ext.atoms[-1].relation == virtual_symbol(0, 0)
        assert ext.is_free_connex  # the point of Example 2

    def test_extension_edges(self):
        plan = self._example2_plan()
        edges = extension_edges(EX2, plan)
        assert frozenset(variables("x z y")) in edges

    def test_depth_and_witness_iteration(self):
        plan = self._example2_plan()
        assert plan.depth() == 1
        assert trivial_plan(0).depth() == 0
        assert len(list(plan.all_witnesses())) == 1

    def test_plans_hashable(self):
        assert hash(self._example2_plan()) == hash(self._example2_plan())


class TestValidation:
    def _witness(self) -> ProvidesWitness:
        witnesses = list(provided_sets(EX2, 0, 1, trivial_plan(1)))
        return next(
            w for w in witnesses if w.provided == frozenset(variables("x z y"))
        )

    def test_valid_witness_passes(self):
        assert validate_witness(EX2, 0, self._witness()) == []

    def test_broken_hom_detected(self):
        import dataclasses

        w = self._witness()
        bad_hom = tuple((a, Var("w")) for a, _b in w.hom)
        bad = dataclasses.replace(w, hom=bad_hom)
        assert validate_witness(EX2, 0, bad)

    def test_v2_outside_free_detected(self):
        import dataclasses

        w = self._witness()
        bad = dataclasses.replace(
            w, v2=w.v2 | {Var("zzz")}, s=w.s | {Var("zzz")}
        )
        assert validate_witness(EX2, 0, bad)

    def test_s_not_connex_detected(self):
        import dataclasses

        # force S = {x, y} on the matrix-multiplication provider: not S-connex
        u = parse_ucq(
            "Q1(x, y) <- R1(x, z), R2(z, y), R3(y) ; Q2(x, y) <- R1(x, z), R2(z, y)"
        )
        witnesses = list(provided_sets(u, 0, 1, trivial_plan(1)))
        w = witnesses[0]
        bad = dataclasses.replace(
            w,
            v2=frozenset(variables("x y")),
            s=frozenset(variables("x y")),
            provided=frozenset(
                dict(w.hom)[v] for v in variables("x y")
            ),
        )
        assert validate_witness(u, 0, bad)

    def test_atom_vars_must_match_witness(self):
        w = self._witness()
        bad_atom = VirtualAtom(tuple(variables("x z")), w)  # vars != provided
        plan = ExtensionPlan(0, (bad_atom,))
        assert validate_plan(EX2, plan)

    def test_valid_plan_passes(self):
        w = self._witness()
        atom = VirtualAtom(tuple(sorted(w.provided, key=str)), w)
        assert validate_plan(EX2, ExtensionPlan(0, (atom,)), _check_fc=True) == []
