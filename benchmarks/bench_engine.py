"""Engine benchmark: cold-vs-warm plan latency and the compiled CDY walk.

Claims measured (and recorded in ``BENCH_engine.json`` so future PRs have a
trajectory to gate against):

* **cold vs warm** — the first ``Engine.execute`` on a query pays
  classification, certificate search and ext-connex-tree construction; every
  later call (same query or an isomorphic renaming) hits the plan cache and
  pays only data preprocessing. Target: warm ≥ 5× faster on a repeated
  free-connex workload.
* **compiled vs reference CDY walk** — the iterative, itemgetter-compiled
  enumeration loop against the seed recursive dict-mutating walk
  (:meth:`CDYEnumerator.iter_answers_reference`), preprocessing excluded.
  Target: ≥ 1.5× on ``bench_cdy_vs_naive``-sized instances.
* **per-answer delay** — wall-clock and abstract-step delay of the compiled
  walk, cold and warm, for the trajectory record.

Standalone (not a pytest-benchmark file)::

    PYTHONPATH=src python benchmarks/bench_engine.py [--quick] [--out BENCH_engine.json]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.database import random_instance_for  # noqa: E402
from repro.engine import Engine  # noqa: E402
from repro.enumeration import StepCounter  # noqa: E402
from repro.query import parse_cq, parse_ucq  # noqa: E402
from repro.yannakakis import CDYEnumerator  # noqa: E402

# the repeated free-connex workload: one free-connex CQ and one Theorem-4
# union, each re-submitted under fresh variable/relation names so warm calls
# exercise both the exact-hit and the isomorphism-hit paths
CDY_QUERY = "Q(x, y) <- R(x, y), S(y, z), T(z, w)"
UNION_QUERY = "Q1(x, y) <- R(x, y), S(y, z) ; Q2(x, y) <- T(x, y), U(y, w)"

WALK_QUERY = parse_cq(CDY_QUERY)  # bench_cdy_vs_naive's query shape


def _rename(query: str, tag: int) -> str:
    """An isomorphic copy of *query* with tagged relation/variable names."""
    out = query
    for sym in ("R", "S", "T", "U"):
        out = out.replace(f"{sym}(", f"{sym}{tag}(")
    for var in ("x", "y", "z", "w"):
        out = out.replace(f"{var},", f"{var}{tag},").replace(
            f"{var})", f"{var}{tag})"
        )
    return out


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_cold_vs_warm(n_tuples: int, rounds: int, repeats: int) -> dict:
    """Cold (classify+plan+execute) vs warm (plan-cache hit) latency."""
    results = {}
    for label, text in (("cdy", CDY_QUERY), ("union_theorem4", UNION_QUERY)):
        cold_times, warm_times, iso_times = [], [], []
        for r in range(repeats):
            engine = Engine()
            ucq = parse_ucq(_rename(text, r + 1))
            # fresh instance names per repeat so nothing leaks across engines
            instance = random_instance_for(
                ucq, n_tuples=n_tuples, domain_size=max(4, n_tuples // 8), seed=7
            )
            start = time.perf_counter()
            list(engine.execute(ucq, instance))
            cold_times.append(time.perf_counter() - start)
            for _ in range(rounds):
                start = time.perf_counter()
                list(engine.execute(ucq, instance))
                warm_times.append(time.perf_counter() - start)
            # isomorphic renaming: same plan, different names
            iso = parse_ucq(_rename(text, 900 + r))
            iso_instance = random_instance_for(
                iso, n_tuples=n_tuples, domain_size=max(4, n_tuples // 8), seed=7
            )
            start = time.perf_counter()
            list(engine.execute(iso, iso_instance))
            iso_times.append(time.perf_counter() - start)
            assert engine.stats.classifications == 1, engine.stats
        cold = min(cold_times)
        warm = statistics.median(warm_times)
        results[label] = {
            "n_tuples": n_tuples,
            "cold_s": cold,
            "warm_median_s": warm,
            "warm_best_s": min(warm_times),
            "iso_hit_median_s": statistics.median(iso_times),
            "speedup_cold_over_warm": cold / warm if warm else float("inf"),
        }
    return results


def bench_cdy_walk(n_tuples: int, repeats: int) -> dict:
    """Compiled iterative walk vs the seed recursive reference walk."""
    instance = random_instance_for(
        WALK_QUERY, n_tuples=n_tuples, domain_size=max(4, n_tuples // 8), seed=51
    )
    enum = CDYEnumerator(WALK_QUERY, instance)  # preprocessing excluded below
    compiled = _best_of(lambda: list(enum), repeats)
    reference = _best_of(lambda: list(enum.iter_answers_reference()), repeats)
    answers = len(list(enum))
    assert set(enum) == set(enum.iter_answers_reference())
    return {
        "n_tuples": n_tuples,
        "answers": answers,
        "compiled_s": compiled,
        "reference_s": reference,
        "speedup_compiled_over_reference": reference / compiled
        if compiled
        else float("inf"),
    }


def bench_delay(n_tuples: int) -> dict:
    """Per-answer delay of a warm engine run, in steps and wall time."""
    engine = Engine()
    ucq = parse_ucq(CDY_QUERY)
    instance = random_instance_for(
        ucq, n_tuples=n_tuples, domain_size=max(4, n_tuples // 8), seed=7
    )
    list(engine.execute(ucq, instance))  # make the next run warm
    counter = StepCounter()
    stream = engine.execute(ucq, instance, counter=counter)
    delays, last = [], counter.count
    start = time.perf_counter()
    answers = 0
    for _ in stream:
        delays.append(counter.count - last)
        last = counter.count
        answers += 1
    elapsed = time.perf_counter() - start
    return {
        "n_tuples": n_tuples,
        "answers": answers,
        "max_delay_steps": max(delays) if delays else 0,
        "mean_delay_steps": (sum(delays) / len(delays)) if delays else 0.0,
        "mean_delay_us": (elapsed / answers * 1e6) if answers else 0.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes for CI smoke runs"
    )
    parser.add_argument("--out", default="BENCH_engine.json")
    args = parser.parse_args(argv)

    if args.quick:
        plan_n, walk_n, rounds, repeats = 100, 500, 5, 3
    else:
        plan_n, walk_n, rounds, repeats = 200, 2000, 20, 5

    report = {
        "config": {"quick": args.quick, "python": sys.version.split()[0]},
        "cold_vs_warm": bench_cold_vs_warm(plan_n, rounds, repeats),
        "cdy_walk": bench_cdy_walk(walk_n, repeats),
        "delay": bench_delay(plan_n),
    }

    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")

    for label, row in report["cold_vs_warm"].items():
        print(
            f"cold_vs_warm[{label}]: cold={row['cold_s'] * 1e3:.2f}ms "
            f"warm={row['warm_median_s'] * 1e3:.2f}ms "
            f"speedup={row['speedup_cold_over_warm']:.1f}x"
        )
    walk = report["cdy_walk"]
    print(
        f"cdy_walk: compiled={walk['compiled_s'] * 1e3:.2f}ms "
        f"reference={walk['reference_s'] * 1e3:.2f}ms "
        f"speedup={walk['speedup_compiled_over_reference']:.2f}x "
        f"({walk['answers']} answers)"
    )
    delay = report["delay"]
    print(
        f"delay: max={delay['max_delay_steps']} steps, "
        f"mean={delay['mean_delay_steps']:.2f} steps, "
        f"{delay['mean_delay_us']:.2f}us/answer"
    )
    print(f"wrote {out}")

    ok = all(
        row["speedup_cold_over_warm"] >= 5.0
        for row in report["cold_vs_warm"].values()
    ) and walk["speedup_compiled_over_reference"] >= 1.5
    if not ok:
        print("WARNING: performance targets missed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
