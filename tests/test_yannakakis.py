"""Tests for grounding, the full reducer, and the CDY evaluator."""

import pytest

from repro.database import Instance, Relation, random_instance_for
from repro.enumeration import StepCounter
from repro.exceptions import NotFreeConnexError, NotSConnexError
from repro.naive import evaluate_cq
from repro.query import Var, parse_cq, variables
from repro.yannakakis import (
    CDYEnumerator,
    NodeRelation,
    full_reduce,
    ground_atom,
    ground_atoms,
    semijoin,
)


class TestGrounding:
    def test_pure_atom_passthrough(self):
        from repro.query import parse_atom

        inst = Instance.from_dict({"R": [(1, 2), (3, 4)]})
        g = ground_atom(parse_atom("R(x, y)"), inst)
        assert g.vars == (Var("x"), Var("y"))
        assert g.rows == {(1, 2), (3, 4)}

    def test_constant_selection(self):
        from repro.query import parse_atom

        inst = Instance.from_dict({"R": [(1, 2), (3, 2), (1, 5)]})
        g = ground_atom(parse_atom("R(x, 2)"), inst)
        assert g.vars == (Var("x"),)
        assert g.rows == {(1,), (3,)}

    def test_repeated_variable_selection(self):
        from repro.query import parse_atom

        inst = Instance.from_dict({"R": [(1, 1), (1, 2), (2, 2)]})
        g = ground_atom(parse_atom("R(x, x)"), inst)
        assert g.vars == (Var("x"),)
        assert g.rows == {(1,), (2,)}

    def test_var_order_first_occurrence(self):
        from repro.query import parse_atom

        inst = Instance.from_dict({"R": [(1, 2, 3)]})
        g = ground_atom(parse_atom("R(y, x, y)"), inst)
        assert g.vars == (Var("y"), Var("x"))
        assert g.rows == set()  # positions 0 and 2 differ

    def test_ground_atoms_order_matches_cq(self):
        q = parse_cq("Q(x) <- R(x, y), S(y)")
        inst = Instance.from_dict({"R": [(1, 2)], "S": [(2,)]})
        gs = ground_atoms(q, inst)
        assert [g.atom.relation for g in gs] == ["R", "S"]


class TestSemijoinAndReducer:
    def test_semijoin_filters(self):
        x, y, z = variables("x y z")
        target = NodeRelation((x, y), {(1, 2), (3, 4)})
        source = NodeRelation((y, z), {(2, 9)})
        semijoin(target, source)
        assert target.rows == {(1, 2)}

    def test_semijoin_no_shared_vars_checks_emptiness(self):
        x, y = variables("x y")
        target = NodeRelation((x,), {(1,)})
        semijoin(target, NodeRelation((y,), set()))
        assert target.rows == set()
        target2 = NodeRelation((x,), {(1,)})
        semijoin(target2, NodeRelation((y,), {(5,)}))
        assert target2.rows == {(1,)}

    def test_full_reduce_chain(self):
        from repro.hypergraph import join_tree, Hypergraph

        x, y, z = variables("x y z")
        hg = Hypergraph.from_edges([{x, y}, {y, z}])
        tree = join_tree(hg)
        rels = {}
        for nid in tree.nodes:
            node = tree.nodes[nid]
            if node.atom_index == 0:
                rels[nid] = NodeRelation(tuple(sorted(node.vars, key=str)), {(1, 2), (8, 9)})
            else:
                rels[nid] = NodeRelation(tuple(sorted(node.vars, key=str)), {(2, 3)})
        ok = full_reduce(tree, rels)
        assert ok
        # (8,9) should be gone: y=9 has no continuation
        sizes = sorted(len(r.rows) for r in rels.values())
        assert sizes == [1, 1]

    def test_full_reduce_detects_empty(self):
        from repro.hypergraph import join_tree, Hypergraph

        x, y, z = variables("x y z")
        hg = Hypergraph.from_edges([{x, y}, {y, z}])
        tree = join_tree(hg)
        rels = {}
        for nid in tree.nodes:
            node = tree.nodes[nid]
            order = tuple(sorted(node.vars, key=str))
            rels[nid] = NodeRelation(order, {(1, 2)} if node.atom_index == 0 else set())
        assert not full_reduce(tree, rels)


FREE_CONNEX_CASES = [
    "Q(x, y) <- R(x, y)",
    "Q(x) <- R(x, y)",
    "Q(x, y) <- R(x, y), S(y, z), T(z, w)",
    "Q(x, y, z) <- R(x, y), S(y, z)",
    "Q() <- R(x, y), S(y, z)",
    "Q(x, y) <- R(x), S(y)",
    "Q(x, y, w) <- R1(x, y), R2(y, w)",
    "Q(a, b, c) <- R(a, b, c), S(c, d), T(d, e)",
    "Q(x) <- R(x, y), S(y, z), T(z, x)",  # cyclic body but covered: x free
]


class TestCDYAgainstNaive:
    @pytest.mark.parametrize("text", FREE_CONNEX_CASES[:8])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_naive(self, text, seed):
        q = parse_cq(text)
        inst = random_instance_for(q, n_tuples=50, domain_size=5, seed=seed)
        assert set(CDYEnumerator(q, inst)) == evaluate_cq(q, inst)

    def test_rejects_non_free_connex(self):
        q = parse_cq("Pi(x, y) <- A(x, z), B(z, y)")
        inst = Instance.from_dict({"A": [(1, 2)], "B": [(2, 3)]})
        with pytest.raises(NotFreeConnexError):
            CDYEnumerator(q, inst)

    def test_rejects_cyclic(self):
        q = parse_cq("Q(x, y, u) <- R(x, y), S(y, u), T(u, x)")
        inst = Instance.from_dict({"R": [(1, 2)], "S": [(2, 3)], "T": [(3, 1)]})
        with pytest.raises(NotFreeConnexError):
            CDYEnumerator(q, inst)

    def test_no_duplicates(self):
        q = parse_cq("Q(x) <- R(x, y), S(y, z)")
        inst = random_instance_for(q, n_tuples=80, domain_size=4, seed=7)
        results = list(CDYEnumerator(q, inst))
        assert len(results) == len(set(results))

    def test_empty_instance(self):
        q = parse_cq("Q(x) <- R(x, y)")
        inst = Instance.from_dict({"R": Relation.empty(2)})
        assert list(CDYEnumerator(q, inst)) == []

    def test_dangling_tuples_removed(self):
        q = parse_cq("Q(x) <- R(x, y), S(y)")
        inst = Instance.from_dict({"R": [(1, 2), (5, 6)], "S": [(2,)]})
        assert set(CDYEnumerator(q, inst)) == {(1,)}

    def test_boolean_nonempty(self):
        q = parse_cq("Q() <- R(x, y), S(y, z)")
        inst = Instance.from_dict({"R": [(1, 2)], "S": [(2, 3)]})
        assert list(CDYEnumerator(q, inst)) == [()]

    def test_boolean_empty_join(self):
        q = parse_cq("Q() <- R(x, y), S(y, z)")
        inst = Instance.from_dict({"R": [(1, 2)], "S": [(9, 3)]})
        assert list(CDYEnumerator(q, inst)) == []

    def test_output_order_override(self):
        q = parse_cq("Q(x, y) <- R(x, y)")
        inst = Instance.from_dict({"R": [(1, 2)]})
        e = CDYEnumerator(q, inst, output_order=variables("y x"))
        assert list(e) == [(2, 1)]

    def test_output_order_must_match_s(self):
        q = parse_cq("Q(x, y) <- R(x, y)")
        inst = Instance.from_dict({"R": [(1, 2)]})
        with pytest.raises(NotSConnexError):
            CDYEnumerator(q, inst, output_order=variables("x"))

    def test_self_join_supported(self):
        # upper bounds do not need self-join-freeness
        q = parse_cq("Q(x, z) <- R(x, y), R(y, z), R(z, w)")
        inst = random_instance_for(q, n_tuples=40, domain_size=4, seed=3)
        if q.is_free_connex:
            assert set(CDYEnumerator(q, inst)) == evaluate_cq(q, inst)


class TestCDYSConnexMode:
    def test_s_larger_than_free(self):
        # Example 2's provider run: enumerate Q2 over S = {x, y, w} = free,
        # but also S strictly containing a projection's needs
        q = parse_cq("Q(x) <- R(x, y), S(y, z)")
        inst = Instance.from_dict({"R": [(1, 2), (4, 2)], "S": [(2, 3)]})
        e = CDYEnumerator(q, inst, s=variables("x y"))
        assert set(e) == {(1, 2), (4, 2)}

    def test_s_must_be_subset_of_vars(self):
        q = parse_cq("Q(x) <- R(x, y)")
        inst = Instance.from_dict({"R": [(1, 2)]})
        with pytest.raises(NotSConnexError):
            CDYEnumerator(q, inst, s=variables("x q"))

    def test_extend_produces_homomorphism(self):
        q = parse_cq("Q(x) <- R(x, y), S(y, z), T(z, w)")
        inst = Instance.from_dict(
            {"R": [(1, 2)], "S": [(2, 3)], "T": [(3, 4), (3, 5)]}
        )
        e = CDYEnumerator(q, inst)
        full = e.extend({Var("x"): 1})
        assert full[Var("y")] == 2 and full[Var("z")] == 3
        assert full[Var("w")] in (4, 5)
        # check it is a homomorphism
        from repro.naive import answer_mappings

        homs = list(answer_mappings(q, inst))
        assert full in homs


class TestCDYMembership:
    def test_contains_agrees_with_enumeration(self):
        q = parse_cq("Q(x, y) <- R(x, y), S(y, z)")
        inst = random_instance_for(q, n_tuples=60, domain_size=5, seed=9)
        e = CDYEnumerator(q, inst)
        answers = set(e)
        for t in answers:
            assert e.contains(t)
        non_answers = {(a, b) for a in range(5) for b in range(5)} - answers
        for t in list(non_answers)[:10]:
            assert not e.contains(t)

    def test_contains_wrong_arity(self):
        q = parse_cq("Q(x, y) <- R(x, y)")
        inst = Instance.from_dict({"R": [(1, 2)]})
        assert not CDYEnumerator(q, inst).contains((1,))


class TestCDYDelayShape:
    def test_constant_delay_in_steps(self):
        """Max inter-answer step delay must not grow with instance size."""
        from repro.enumeration import profile_steps

        q = parse_cq("Q(x, y) <- R(x, y), S(y, z)")
        max_delays = []
        for n in (50, 200, 800):
            inst = random_instance_for(q, n_tuples=n, domain_size=max(4, n // 10), seed=1)

            profile = profile_steps(
                lambda c, inst=inst: CDYEnumerator(q, inst, counter=c)
            )
            if profile.delays:
                max_delays.append(profile.max_delay)
        assert max_delays and max(max_delays) <= 12  # constant, not n-dependent

    def test_preprocessing_grows_linearly(self):
        from repro.enumeration import profile_steps

        q = parse_cq("Q(x, y) <- R(x, y), S(y, z)")
        pre = []
        sizes = [100, 200, 400]
        for n in sizes:
            inst = random_instance_for(q, n_tuples=n, domain_size=n, seed=2)
            profile = profile_steps(
                lambda c, inst=inst: CDYEnumerator(q, inst, counter=c), limit=0
            )
            pre.append(profile.preprocessing)
        # ratios should track the size ratios (2x) rather than 4x (quadratic)
        assert pre[1] / pre[0] < 3.0
        assert pre[2] / pre[1] < 3.0
