"""Delay-regression suite for the engine facade.

The paper's guarantee is linear preprocessing + constant delay; wall-clock
is too noisy to gate on, so these tests measure delay in abstract
:class:`StepCounter` ticks (the library's RAM-model proxy, deterministic):

* for a free-connex CQ and a Theorem-4 union, the maximum number of steps
  between consecutive answers is a small constant that does **not** grow
  when the instance grows 100× (n=100 vs n=10,000);
* warm ``Engine`` calls perform zero classification and zero tree-building
  work (the plan cache really does skip both), and warm calls on an
  unchanged instance skip preprocessing entirely.
"""

from __future__ import annotations

import pytest

from repro.database import random_instance_for
from repro.engine import Engine, PlanKind
from repro.enumeration import StepCounter
from repro.query import parse_ucq

FREE_CONNEX_CQ = "Q(x, y) <- R(x, y), S(y, z), T(z, w)"
THEOREM4_UNION = "Q1(x, y) <- R(x, y), S(y, z) ; Q2(x, y) <- T(x, y), U(y, w)"

SMALL_N = 100
LARGE_N = 10_000

# ticks between consecutive answers are bounded by a few per top-tree node
# (plus Algorithm 1's membership probes); 16 is generous for these shapes
DELAY_CEILING = 16


def _delay_profile(engine: Engine, ucq, instance, limit: int = 5_000):
    """(preprocessing steps, list of per-answer step deltas)."""
    counter = StepCounter()
    stream = engine.execute(ucq, instance, counter=counter)
    preprocessing = counter.count
    delays = []
    last = counter.count
    for i, _answer in enumerate(stream):
        delays.append(counter.count - last)
        last = counter.count
        if i + 1 >= limit:
            break
    return preprocessing, delays


@pytest.mark.parametrize(
    "text,kind",
    [(FREE_CONNEX_CQ, PlanKind.CDY), (THEOREM4_UNION, PlanKind.UNION_TRACTABLE)],
    ids=["free_connex_cq", "theorem4_union"],
)
def test_max_delay_constant_across_instance_sizes(text, kind):
    engine = Engine()
    ucq = parse_ucq(text)
    assert engine.plan(ucq).kind is kind

    profiles = {}
    for n in (SMALL_N, LARGE_N):
        instance = random_instance_for(
            ucq, n_tuples=n, domain_size=max(4, n // 8), seed=17
        )
        preprocessing, delays = _delay_profile(engine, ucq, instance)
        assert delays, f"n={n}: no answers enumerated"
        profiles[n] = (preprocessing, max(delays))

    _, max_small = profiles[SMALL_N]
    _, max_large = profiles[LARGE_N]
    assert max_small <= DELAY_CEILING
    # constant delay: growing the instance 100x must not grow the delay bound
    assert max_large <= max_small, (
        f"delay grew with instance size: {max_small} -> {max_large}"
    )


def test_preprocessing_grows_with_instance_but_delay_does_not():
    """Sanity check that the profile actually separates the two phases."""
    engine = Engine()
    ucq = parse_ucq(FREE_CONNEX_CQ)
    prep_small, delays_small = _delay_profile(
        engine, ucq, random_instance_for(ucq, SMALL_N, SMALL_N // 8, seed=17)
    )
    prep_large, delays_large = _delay_profile(
        engine, ucq, random_instance_for(ucq, LARGE_N, LARGE_N // 8, seed=17)
    )
    assert prep_large > prep_small * 10  # linear-ish preprocessing moved
    assert max(delays_large) <= max(delays_small)


class TestWarmCallsDoZeroPlanningWork:
    def test_repeat_and_isomorphic_calls_skip_classification_and_trees(self):
        engine = Engine()
        ucq = parse_ucq(FREE_CONNEX_CQ)
        instance = random_instance_for(ucq, 50, 8, seed=3)
        list(engine.execute(ucq, instance))
        classifications = engine.stats.classifications
        trees = engine.stats.trees_built
        assert classifications == 1 and trees == 1

        # warm: the very same query again
        list(engine.execute(ucq, instance))
        # warm: an isomorphic renaming of it
        iso = parse_ucq("Q(a, b) <- E1(a, b), E2(b, c), E3(c, d)")
        iso_instance = random_instance_for(iso, 50, 8, seed=3)
        list(engine.execute(iso, iso_instance))

        assert engine.stats.classifications == classifications, (
            "warm call re-classified the query"
        )
        assert engine.stats.trees_built == trees, (
            "warm call rebuilt ext-connex trees"
        )
        assert engine.stats.plan_hits == 2
        assert engine.stats.iso_hits == 1

    def test_warm_same_instance_skips_preprocessing_steps(self):
        """With an unchanged instance the warm path does no per-call
        grounding/reduction/indexing at all (enumerator reuse)."""
        engine = Engine()
        ucq = parse_ucq(THEOREM4_UNION)
        instance = random_instance_for(ucq, 50, 8, seed=3)
        first = set(engine.execute(ucq, instance))
        assert engine.stats.prep_misses == 1
        again = set(engine.execute(ucq, instance))
        assert again == first
        assert engine.stats.prep_hits == 1
        assert engine.stats.prep_misses == 1

    def test_step_counted_runs_bypass_enumerator_reuse(self):
        """A counter-carrying run must measure real preprocessing, so it
        builds fresh instead of serving the cached enumerator."""
        engine = Engine()
        ucq = parse_ucq(FREE_CONNEX_CQ)
        instance = random_instance_for(ucq, 50, 8, seed=3)
        list(engine.execute(ucq, instance))
        preprocessing, delays = _delay_profile(engine, ucq, instance)
        assert preprocessing > 0
        assert delays and max(delays) <= DELAY_CEILING
