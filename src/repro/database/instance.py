"""Database instances: named relations over a schema.

The paper measures input size by the Flum-Frick-Grohe encoding ``||I||``;
:meth:`Instance.size_in_integers` mirrors it (sum of relation encodings plus
the active domain).

Instances are the unit of change the engine serves: every relation carries a
uid and a monotone version (see :mod:`repro.database.relation`), and
:meth:`Instance.version_vector` / :meth:`Instance.diff_since` expose them as
an instance-level version vector with per-relation deltas — the contract the
engine's delta-apply warm path is built on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from ..exceptions import SchemaError
from .relation import Relation, Value

#: one version-vector entry: ``(uid, version, cardinality)`` or None for an
#: absent symbol; the cardinality cross-checks the delta log against
#: out-of-band mutation (editing ``Relation.tuples`` directly)
VersionEntry = Optional[tuple[int, int, int]]
#: per-relation net change: ``(adds, removes)``
Delta = tuple[set[tuple], set[tuple]]


@dataclass
class Instance:
    """A mutable database instance mapping relation symbols to relations.

    Besides the data, an instance may carry *declared* functional
    dependencies (``fds``, see :mod:`repro.fd.fds`): schema-level
    promises the engine's FD-aware plan rescue consults when the
    classifier rejects a query — declaring an FD never changes answers,
    it only unlocks the tractable dispatch for queries whose FD-extension
    is free-connex (satisfaction is re-checked against the data before
    any rescued plan is used).
    """

    relations: dict[str, Relation] = field(default_factory=dict)
    #: declared functional dependencies
    #: (:class:`~repro.fd.fds.FunctionalDependency`); see :meth:`declare_fds`
    fds: list = field(default_factory=list)

    def declare_fds(self, fds: Iterable) -> None:
        """Declare functional dependencies this instance promises to satisfy.

        Appends to ``fds``. Declarations are schema metadata: they are
        *not* enforced on mutation, and the engine verifies them against
        the current data (cheaply memoized on the version vector) before
        routing any query through an FD-rescued plan — a violated
        declaration simply disables the rescue.
        """
        self.fds.extend(fds)

    # ------------------------------------------------------------------ #
    # constructors

    @staticmethod
    def from_dict(data: Mapping[str, Iterable[Sequence[Value]]]) -> "Instance":
        """Build an instance from ``{symbol: iterable of rows}``.

        Arities are inferred from the first row; empty relations need
        explicit :class:`Relation` values instead.
        """
        inst = Instance()
        for name, rows in data.items():
            if isinstance(rows, Relation):
                inst.relations[name] = rows
                continue
            rows = [tuple(r) for r in rows]
            if not rows:
                raise SchemaError(
                    f"cannot infer arity of empty relation {name!r}; "
                    "pass a Relation explicitly"
                )
            arity = len(rows[0])
            inst.relations[name] = Relation.from_iterable(arity, rows)
        return inst

    # ------------------------------------------------------------------ #

    def get(self, name: str, arity: int | None = None) -> Relation:
        """The relation for *name*; missing symbols yield an empty relation.

        The paper's reductions routinely "leave the relations that do not
        appear in the atoms of Q1 empty" — missing symbols behave that way,
        provided the caller supplies the arity.
        """
        rel = self.relations.get(name)
        if rel is not None:
            if arity is not None and rel.arity != arity:
                raise SchemaError(
                    f"relation {name!r} has arity {rel.arity}, expected {arity}"
                )
            return rel
        if arity is None:
            raise SchemaError(f"unknown relation {name!r} and no arity given")
        return Relation.empty(arity)

    def set(self, name: str, relation: Relation) -> None:
        """Bind *name* to *relation*, replacing any previous binding.

        A wholesale replacement starts a new version history (the new
        relation's uid differs), so cached preprocessing over the old
        binding rebases instead of delta-applying.
        """
        self.relations[name] = relation

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def snapshot(self) -> "Instance":
        """An independent copy: fresh relation objects with fresh tuple sets.

        Mutating either side never affects the other; the copies start new
        version histories (fresh uids), so cached preprocessing for the
        original is never confused with the snapshot's. Declared FDs carry
        over (they are schema metadata, not data).
        """
        return Instance(
            {k: v.copy() for k, v in self.relations.items()}, list(self.fds)
        )

    def copy(self) -> "Instance":
        """Alias for :meth:`snapshot`."""
        return self.snapshot()

    # ------------------------------------------------------------------ #
    # versioning

    def version_vector(
        self, symbols: Iterable[str] | None = None
    ) -> dict[str, VersionEntry]:
        """``{symbol: (uid, version, cardinality)}`` for the given symbols
        (default: all).

        Symbols not present in the instance map to ``None``, so the vector
        also witnesses appearance/disappearance of whole relations. The
        cardinality lets :meth:`diff_since` detect mutations that bypassed
        the versioned mutators (and would otherwise go unnoticed whenever
        the version counter did not move).
        """
        names = self.relations.keys() if symbols is None else symbols
        out: dict[str, VersionEntry] = {}
        for name in names:
            rel = self.relations.get(name)
            out[name] = (
                None if rel is None else (rel.uid, rel.version, len(rel.tuples))
            )
        return out

    def diff_since(
        self, vector: Mapping[str, VersionEntry]
    ) -> dict[str, Delta] | None:
        """Per-relation net deltas since *vector*, or None if a rebase is
        required.

        The vector's keys define the symbols of interest. A rebase is
        signalled when a symbol appeared or disappeared, a relation object
        was replaced wholesale (uid mismatch), a relation's delta log was
        truncated past the recorded version, or the replayed log does not
        account for the relation's current cardinality (someone edited
        ``Relation.tuples`` behind the mutators' back — the log cannot be
        trusted). Unchanged symbols are omitted from the result, so an empty
        dict means "nothing to do".
        """
        out: dict[str, Delta] = {}
        for name, entry in vector.items():
            rel = self.relations.get(name)
            if rel is None:
                if entry is None:
                    continue
                return None  # relation disappeared
            if entry is None:
                return None  # relation appeared
            uid, version, cardinality = entry
            if rel.uid != uid:
                return None  # replaced wholesale: no shared history
            delta = rel.delta_since(version)
            if delta is None:
                return None  # log truncated: too far behind
            adds, removes = delta
            if cardinality + len(adds) - len(removes) != len(rel.tuples):
                return None  # out-of-band mutation: log is untrustworthy
            if adds or removes:
                out[name] = (adds, removes)
        return out

    def extended(self, extra: Mapping[str, Relation]) -> "Instance":
        """A copy with additional relations (virtual atoms of Theorem 12)."""
        out = self.copy()
        for name, rel in extra.items():
            out.relations[name] = rel
        return out

    # ------------------------------------------------------------------ #
    # measures

    def active_domain(self) -> set[Value]:
        """All values occurring anywhere in the instance (adom(I))."""
        out: set[Value] = set()
        for rel in self.relations.values():
            out |= rel.domain()
        return out

    def total_tuples(self) -> int:
        """Total tuple count over all relations."""
        return sum(len(r) for r in self.relations.values())

    def size_in_integers(self) -> int:
        """||I||: relation encodings plus active domain size."""
        return sum(r.size_in_integers() for r in self.relations.values()) + len(
            self.active_domain()
        )

    def __str__(self) -> str:
        parts = ", ".join(
            f"{name}:{len(rel)}" for name, rel in sorted(self.relations.items())
        )
        return f"Instance({parts})"
