"""T17/T19/T29 — the dichotomy theorems as executable tables.

Claims regenerated:
* Theorem 29: over random body-isomorphic two-CQ unions (chain bodies with
  random heads), the guard test and the constructive free-connex search
  agree on every instance — guards ARE the dichotomy;
* Theorem 17: unions of intractable CQs without body-isomorphic acyclic
  pairs are intractable (the engine applies Lemma 14/15/16);
* Theorem 19 composes both for two intractable CQs.
"""

import random

import pytest

from repro.catalog import shared_body_ucq
from repro.core import (
    Status,
    classify,
    find_free_connex_certificate,
    pair_guards,
    unify_bodies,
)
from repro.query import parse_ucq


def _random_pair(rng: random.Random):
    length = rng.randint(2, 4)
    names = [f"c{i}" for i in range(length + 1)]
    body = ", ".join(f"E{i}({names[i]}, {names[i + 1]})" for i in range(length))
    head_size = rng.randint(1, length)
    h1 = tuple(rng.sample(names, head_size))
    h2 = tuple(rng.sample(names, head_size))
    return shared_body_ucq(body, heads=[h1, h2])


def test_theorem29_guards_equal_search(benchmark):
    """60 random body-isomorphic pairs: guard test == certificate search."""
    rng = random.Random(2929)
    pairs = [_random_pair(rng) for _ in range(60)]

    def run():
        agreements = 0
        guarded_count = 0
        for ucq in pairs:
            shared = unify_bodies(ucq)
            guarded = pair_guards(shared).all_guarded
            found = find_free_connex_certificate(ucq) is not None
            agreements += guarded == found
            guarded_count += guarded
        return agreements, guarded_count

    agreements, guarded_count = benchmark(run)
    assert agreements == len(pairs)
    benchmark.extra_info["pairs"] = len(pairs)
    benchmark.extra_info["tractable_fraction"] = guarded_count / len(pairs)


def test_theorem29_full_classification(benchmark):
    """The engine labels every random pair tractable or intractable —
    never UNKNOWN (the dichotomy is complete for this class)."""
    rng = random.Random(1919)
    pairs = [_random_pair(rng) for _ in range(40)]

    verdicts = benchmark(lambda: [classify(u) for u in pairs])

    assert all(v.status is not Status.UNKNOWN for v in verdicts)
    table = {}
    for v in verdicts:
        table[v.statement] = table.get(v.statement, 0) + 1
    benchmark.extra_info["verdict_table"] = table


def test_theorem17_intractable_union(benchmark):
    """Three intractable CQs, no body-isomorphic acyclic pair."""
    ucq = parse_ucq(
        "Q1(x, y) <- R(x, z), S(z, y) ; "
        "Q2(x, y) <- S(x, z), T(z, y) ; "
        "Q3(x, y) <- T(x, z), R(z, y), U(y)"
    )
    assert ucq.all_intractable_cqs

    verdict = benchmark(classify, ucq)

    assert verdict.intractable
    benchmark.extra_info["statement"] = verdict.statement


def test_theorem19_two_intractable_guarded_pair(benchmark):
    """Theorem 19's positive half: two intractable body-isomorphic CQs
    whose guards hold are tractable (Example 21's situation)."""
    from repro.catalog import example

    ucq = example("example_21").ucq
    assert ucq.all_intractable_cqs

    verdict = benchmark(classify, ucq)

    assert verdict.tractable
    benchmark.extra_info["statement"] = verdict.statement
