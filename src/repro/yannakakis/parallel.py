"""Parallel sharded cold preprocessing over zero-copy shard channels.

The fused cold pipeline (:mod:`repro.yannakakis.fused`) spends almost all
of its time in one place: the per-row materialize+group pass that turns
each join-tree atom node's grounded rows into its shared-key grouping
``{key: [residuals]}``. That pass is embarrassingly parallel under *any*
partition of the rows, because grouping is a disjoint union. The original
sharded design partitioned raw tuples, grounded each shard against a
shard-*local* interner in the worker, and reconciled id spaces at merge —
which meant every shard's rows were pickled out and every grouping (plus
its decode table) pickled back. This module keeps the shape but moves all
bulk data out of the task payloads:

1. **ground once, globally** — the parent columnar-grounds the whole
   instance into the enumerator's interner with flat, buffer-backed id
   columns (:class:`~repro.database.columns.IdColumn`, ``backed=True``).
   Workers never intern; every id they see is already global, so the
   merge needs no remapping at all.
2. **range-shard, zero-copy** — each atom's rows split into ``k``
   contiguous ``[start, stop)`` windows
   (:func:`~repro.database.partition.shard_bounds`). A window over a flat
   column is a ``memoryview`` slice — no hashing, no row movement, and
   grounded rows are distinct, so any index partition keeps the merge
   dedup-free.
3. **ship descriptors, not data** — the thread backend hands workers the
   columns themselves (shared heap); the process backend publishes each
   column once into a :class:`~repro.database.columns.SharedShardArena`
   of :mod:`multiprocessing.shared_memory` segments and ships only
   ``(segment name, length)`` descriptors plus the per-atom windows — a
   few hundred bytes per task instead of megabytes of pickled rows.
   Workers attach (:class:`~repro.database.columns.AttachedBlock`),
   group over the buffer in **global id space**, and return group maps
   keyed by ids only. The arena closes and unlinks in a ``finally``, so
   a crashed worker can never leak ``/dev/shm`` segments.
4. **merge, decode, sweep** — shard group maps concatenate key-wise
   (plain, remap-free), top-subtree nodes decode to value space once in
   the parent, and the classical up-/down-sweeps run over the merged
   groupings exactly as ``fused_reduce``'s second phase would.

The result is a :class:`~repro.yannakakis.fused.FusedReduction` that the
enumerator adopts through the same code path as the fused pipeline, so
``pipeline="parallel"`` is differentially indistinguishable from
``"fused"`` and ``"reference"`` (the concurrency suite asserts exactly
that for ``k ∈ {1, 2, 4}`` under every backend).

**Backends.** ``pool`` accepts ``"auto"`` (default — delegate to
:func:`~repro.runtime.select_backend`: serial on one core, threads on
free-threaded builds, shared-memory processes on multi-core GIL builds),
or an explicit ``"thread"`` / ``"process"`` / ``"serial"``, which the
differential suites use to force each transport regardless of hardware.
A caller-supplied ``executor`` wins over pool construction and implies
its own kind. ``stats_out`` (a dict) receives the chosen backend and the
per-task serialized byte counts — the measurement behind the
``shard_bytes_reduction`` gate in ``benchmarks/bench_parallel.py``.

**Fault tolerance.** Shard dispatch runs a recovery ladder instead of
letting ``concurrent.futures`` internals escape: a failed shard (worker
exception, hard crash → :class:`~concurrent.futures.process.\
BrokenProcessPool`, cancelled future) is retried once with exponential
backoff — on a fresh executor when the pool broke (an engine-supplied
pool is rebuilt through :class:`~repro.resilience.ShardRecovery`'s
factory) — and a shard that fails its retries falls back to in-parent
serial execution, which is by construction the fused pipeline's own
materialize+group stage over the same global-id columns. Every rung
yields identical answers; ``shard_retries`` / ``pool_rebuilds`` /
``fallbacks`` record which rungs ran. A ``deadline``
(:class:`~repro.resilience.Deadline`) is checked at every phase
boundary (ground, dispatch, collect, merge) and rides the tick seam
through the sweeps; ``faults`` (or the process-wide plan installed via
:mod:`repro.faultinject`) is shipped to workers inside task payloads so
injected crashes are deterministic on every backend.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import (
    BrokenExecutor,
    CancelledError,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from itertools import compress

from ..database.columns import AttachedBlock, IdColumn, SharedShardArena
from ..database.indexes import tuple_selector
from ..database.instance import Instance
from ..database.interner import Interner
from ..database.partition import partition_instance, shard_bounds
from ..enumeration.steps import StepCounter, tick_or_none
from ..hypergraph.jointree import ATOM, JoinTree
from ..query.cq import CQ
from ..query.terms import Var
from ..resilience import Deadline, ShardRecovery
from ..runtime import (
    PROCESS,
    SERIAL,
    THREAD,
    Backend,
    POOL_CHOICES,
    active_fault_hook,
    resolve_pool,
)
from .fused import (
    FusedNode,
    FusedReduction,
    _materialize_atom,
    down_sweep,
    node_key_split,
)
from .grounding import ColumnarAtom, ground_atoms_columnar

#: accepted pool kinds for :func:`parallel_reduce` (see :mod:`repro.runtime`)
POOLS = POOL_CHOICES


def _resolve_backend(
    workers: int, pool: str, executor: Executor | None
) -> Backend:
    """The effective backend: pool resolution, overridden by a
    caller-supplied executor's actual kind (an engine handing down its
    process pool must get shared-memory channels, not heap sharing)."""
    backend = resolve_pool(pool, workers)
    if executor is not None and backend.workers > 1:
        kind = PROCESS if isinstance(executor, ProcessPoolExecutor) else THREAD
        if kind != backend.kind:
            backend = Backend(
                kind, backend.workers, f"caller-supplied {kind} executor"
            )
    return backend


def _pool_executor(
    backend: Backend, executor: Executor | None
) -> tuple[Executor, Executor | None]:
    """``(executor to use, executor to shut down — None when borrowed)``."""
    if executor is not None:
        return executor, None
    if backend.kind == PROCESS:
        own: Executor = ProcessPoolExecutor(max_workers=backend.workers)
    else:
        own = ThreadPoolExecutor(
            max_workers=backend.workers, thread_name_prefix="repro-shard"
        )
    return own, own


def _backoff(delay_s: float, deadline: "Deadline | None") -> None:
    """Sleep before a retry round, capped to the deadline's remainder
    (and checked first, so an already-expired deadline raises instead of
    sleeping)."""
    if deadline is not None:
        deadline.check("parallel:retry-backoff")
        delay_s = min(delay_s, max(deadline.remaining(), 0.0))
    if delay_s > 0:
        time.sleep(delay_s)


def _replace_pool(
    backend: Backend,
    own: Executor | None,
    recovery: ShardRecovery,
) -> tuple[Executor, Executor | None]:
    """A fresh executor after the current one broke.

    An *owned* pool (built by this call) is discarded and recreated; a
    *borrowed* one is rebuilt through the recovery context's factory —
    the engine swaps its backend-matched shard pool there, transparently
    to every queued build — falling back to a private replacement when no
    factory is available. Returns the ``(executor, executor to shut
    down)`` pair in :func:`_pool_executor`'s convention.
    """
    if own is not None:
        try:
            own.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - broken pools may refuse
            pass
        return _pool_executor(backend, None)
    factory = recovery.executor_factory
    if factory is not None:
        fresh = factory()
        if fresh is not None:
            return fresh, None
    return _pool_executor(backend, None)


def _dispatch_with_recovery(
    k: int,
    submit,
    serial_run,
    backend: Backend,
    pool_executor: Executor,
    own_executor: Executor | None,
    rec: ShardRecovery,
    deadline: "Deadline | None",
    note,
) -> tuple[list, Executor, Executor | None]:
    """Run ``k`` shard tasks through the recovery ladder.

    ``submit(executor, i, attempt)`` dispatches shard *i*;
    ``serial_run(i)`` is the in-parent last rung (fault-free by
    construction — the ladder must terminate). Each round collects every
    outstanding future, classifying failures: a cancelled or crashed
    future marks its shard for retry, and a broken executor (failed
    submit, :class:`~concurrent.futures.BrokenExecutor`) additionally
    forces a pool replacement before the next round. Returns
    ``(results, executor, executor-to-shut-down)`` — the executor pair
    may have been replaced mid-flight.
    """
    results: list = [None] * k
    pending = list(range(k))
    attempt = 0
    while pending and attempt <= rec.retry.retries:
        if attempt:
            _backoff(rec.retry.delay(attempt), deadline)
            note(shard_retries=len(pending))
        futures: dict[int, object] = {}
        failed: list[int] = []
        broken = False
        for i in pending:
            try:
                futures[i] = submit(pool_executor, i, attempt)
            except Exception:
                # a broken/shut-down pool refuses new work
                failed.append(i)
                broken = True
        for i, fut in futures.items():
            try:
                results[i] = fut.result()
            except CancelledError:
                failed.append(i)
            except BrokenExecutor:
                failed.append(i)
                broken = True
            except Exception:
                failed.append(i)
        if deadline is not None:
            deadline.check("parallel:collect")
        pending = failed
        if pending and broken and attempt < rec.retry.retries:
            pool_executor, own_executor = _replace_pool(
                backend, own_executor, rec
            )
            note(pool_rebuilds=1)
        attempt += 1
    for i in pending:  # shards that failed every pooled attempt
        note(fallbacks=1)
        results[i] = serial_run(i)
        if deadline is not None:
            deadline.check("parallel:fallback")
    return results, pool_executor, own_executor


# --------------------------------------------------------------------- #
# incremental grounding distribution (hash shards, flat decode tables)


def _remap_into(
    table: tuple[str, bytes], interner: Interner
) -> tuple[list[int], bool]:
    """``(local→global id remap, is-identity)`` for one shard's exported
    decode table — the single place the reconciliation invariant lives:
    :meth:`~repro.database.interner.Interner.import_table` preserves table
    order, so the first shard into a fresh interner remaps to the
    identity and translation can be skipped."""
    remap = interner.import_table(*table)
    return remap, all(i == g for i, g in enumerate(remap))


def shard_ground(
    cq: CQ,
    shard: Instance,
    shard_index: int = 0,
    faults=None,
    attempt: int = 0,
) -> tuple[tuple[str, bytes], list]:
    """Columnar-ground one shard against a local interner (pool worker).

    Returns ``(exported decode table, [(vars, columns, row_count) per
    atom])``. The decode table travels as a flat buffer
    (:meth:`~repro.database.interner.Interner.export_table`) and the
    columns as buffer-backed :class:`~repro.database.columns.IdColumn`
    values, whose pickling is a single ``array('q')`` payload — compact
    for thread and process pools alike. *faults*, when given, fires at
    the ``"ground"`` checkpoint with this shard's index and retry
    *attempt* before any work happens.
    """
    if faults is not None:
        faults.fire("ground", worker=shard_index, attempt=attempt)
    interner = Interner()
    grounded = ground_atoms_columnar(cq, shard, interner, backed=True)
    return (
        interner.export_table(),
        [(g.vars, g.columns, g.row_count) for g in grounded],
    )


def parallel_ground_columnar(
    cq: CQ,
    instance: Instance,
    interner: Interner,
    workers: int = 2,
    pool: str = "auto",
    executor: Executor | None = None,
    recovery: ShardRecovery | None = None,
    faults=None,
    deadline: "Deadline | None" = None,
) -> list[ColumnarAtom]:
    """Shard-parallel twin of
    :func:`~repro.yannakakis.grounding.ground_atoms_columnar`.

    Hash-partitions the instance (stable hashes — parent and spawned
    workers agree, see :func:`~repro.database.partition.stable_hash`),
    grounds every shard in a pool worker against a shard-local interner,
    and merges: each shard's flat-exported decode table remaps into
    *interner* via
    :meth:`~repro.database.interner.Interner.import_table` and the id
    columns concatenate per atom per position (one C-level ``map`` per
    column for non-identity remaps, plain adoption otherwise). This is
    what parallelizes the *incremental* (serving) cold build, whose
    reduction must stay on the counting reducer — only its
    grounding/interning stage distributes. Shard dispatch runs the same
    recovery ladder as :func:`parallel_reduce`: a failed shard (worker
    crash, broken executor) is retried on a fresh pool, then grounds
    serially in the parent — identical output, recorded through
    *recovery*'s counters. *deadline* caps every retry backoff (and is
    checked at each ladder rung), so a crashing shard cannot sleep a
    request past its 504 budget.
    """
    backend = _resolve_backend(workers, pool, executor)
    k = backend.workers
    if faults is None:
        faults = active_fault_hook()
    rec = recovery if recovery is not None else ShardRecovery()
    schema_instance = Instance(
        {
            symbol: instance.get(symbol, arity)
            for symbol, arity in cq.schema.items()
        }
    )
    if k == 1:
        shards = [schema_instance]
    else:
        shards = partition_instance(schema_instance, k)
    if k == 1 or backend.kind == SERIAL:
        results = []
        for i, shard in enumerate(shards):
            try:
                results.append(shard_ground(cq, shard, i, faults, 0))
            except Exception:
                result = None
                for attempt in range(1, rec.retry.retries + 1):
                    _backoff(rec.retry.delay(attempt), deadline)
                    rec.note(shard_retries=1)
                    try:
                        result = shard_ground(cq, shard, i, faults, attempt)
                        break
                    except Exception:
                        result = None
                if result is None:
                    rec.note(fallbacks=1)
                    result = shard_ground(cq, shard)
                results.append(result)
    else:
        pool_executor, own = _pool_executor(backend, executor)
        try:

            def _submit(ex: Executor, i: int, attempt: int):
                return ex.submit(shard_ground, cq, shards[i], i, faults, attempt)

            results, pool_executor, own = _dispatch_with_recovery(
                len(shards),
                _submit,
                lambda i: shard_ground(cq, shards[i]),
                backend,
                pool_executor,
                own,
                rec,
                deadline,
                rec.note,
            )
        finally:
            if own is not None:
                own.shutdown(wait=True)

    merged_cols: list[list[list[int]]] | None = None
    row_counts: list[int] = []
    atom_vars: list[tuple[Var, ...]] = []
    for table, atoms in results:
        remap, identity = _remap_into(table, interner)
        getg = remap.__getitem__
        if merged_cols is None:
            merged_cols = [[[] for _ in columns] for _v, columns, _n in atoms]
            row_counts = [0] * len(atoms)
            atom_vars = [vars_ for vars_, _c, _n in atoms]
        for index, (_vars, columns, row_count) in enumerate(atoms):
            row_counts[index] += row_count
            target = merged_cols[index]
            for position, column in enumerate(columns):
                if identity:
                    target[position].extend(column)
                else:
                    target[position].extend(map(getg, column))
    return [
        ColumnarAtom(
            atom, atom_vars[i], tuple(merged_cols[i]), row_counts[i]
        )
        for i, atom in enumerate(cq.atoms)
    ]


# --------------------------------------------------------------------- #
# the zero-copy parallel reducer


def _atom_specs(
    tree: JoinTree, decode_top: frozenset[int] | set[int]
) -> list[tuple[int, int, tuple[Var, ...], tuple[Var, ...], bool]]:
    """Per atom node: ``(node id, atom index, key vars, res vars, decode)``.

    The key/residual split mirrors :func:`~repro.yannakakis.fused.fused_reduce`:
    the key covers the variables shared with the node's parent (canonical
    str-sorted order), the residual the rest. ``decode`` marks top-subtree
    nodes; workers group everything in global id space and the *parent*
    decodes those nodes once after the merge — ids are what travel back,
    never value tuples.
    """
    specs = []
    for nid, node in tree.nodes.items():
        if node.kind != ATOM:
            continue
        _vars_v, key_vars, res_vars = node_key_split(tree, nid)
        specs.append(
            (nid, node.atom_index, key_vars, res_vars, nid in decode_top)
        )
    return specs


def _shard_groups(
    lite: list[tuple],
    specs: list[tuple[int, int, tuple[Var, ...], tuple[Var, ...], bool]],
    bounds: tuple[tuple[int, int], ...],
    shard_index: int = 0,
    faults=None,
    attempt: int = 0,
) -> dict[int, dict[tuple, list[tuple]]]:
    """Group one shard's window of every atom node, in global id space.

    *lite* is ``[(vars, columns, row_count) per atom]`` with columns that
    window zero-copy (:meth:`~repro.database.columns.IdColumn.slice`);
    *bounds* gives this shard's ``[start, stop)`` per atom. Runs the
    fused pipeline's materialize+group stage with semijoin checks
    disabled (they need cross-shard state and run after the merge).
    *faults*, when given, fires at the ``"shard"`` checkpoint with this
    shard's index and retry *attempt* before any work happens.
    """
    if faults is not None:
        faults.fire("shard", worker=shard_index, attempt=attempt)
    out: dict[int, dict[tuple, list[tuple]]] = {}
    for nid, atom_index, key_vars, res_vars, _decode in specs:
        vars_, columns, _row_count = lite[atom_index]
        start, stop = bounds[atom_index]
        window = ColumnarAtom(
            None,
            vars_,
            tuple(
                c.slice(start, stop)
                if isinstance(c, IdColumn)
                else c[start:stop]
                for c in columns
            ),
            stop - start,
        )
        out[nid] = _materialize_atom(window, key_vars, res_vars, [], None)
    return out


def shard_materialize_shm(
    block: list[tuple],
    specs: list[tuple[int, int, tuple[Var, ...], tuple[Var, ...], bool]],
    bounds: tuple[tuple[int, int], ...],
    shard_index: int = 0,
    faults=None,
    attempt: int = 0,
) -> dict[int, dict[tuple, list[tuple]]]:
    """Process-pool worker: attach shared-memory columns, group a window.

    *block* is ``[(vars, row_count, (ColumnSegment per column)) per
    atom]`` — descriptors only; the column data stays in the parent's
    segments and is read through zero-copy views. Attachment is detached
    from this process's resource tracker (the parent owns unlinking) and
    every view is released in the ``finally`` even when grouping raises,
    so a crashing worker neither leaks nor double-frees segments — a
    hard ``os._exit`` crash (injected or real) cannot leak either,
    because the parent owns every segment's unlink. *faults* travels in
    the task payload and fires at the ``"shard"`` checkpoint *before*
    attachment, so injected deaths never hold segment views.
    """
    if faults is not None:
        faults.fire("shard", worker=shard_index, attempt=attempt)
    attached = AttachedBlock()
    try:
        lite = [
            (
                vars_,
                tuple(attached.column(segment) for segment in segments),
                row_count,
            )
            for vars_, row_count, segments in block
        ]
        return _shard_groups(lite, specs, bounds)
    finally:
        attached.close()


def _merge_id_groups(
    shard_results: list[dict[int, dict[tuple, list[tuple]]]],
    tick,
) -> dict[int, dict[tuple, list[tuple]]]:
    """Key-wise concatenation of shard group maps — already one id space.

    Workers group over globally interned ids, so there is nothing to
    remap; grounded rows are distinct and range shards partition them, so
    there is nothing to dedup. The first occurrence of a key adopts the
    shard's row list by reference; a collision (same key, different
    shards) extends — converting the shared residual-free marker
    (:data:`~repro.yannakakis.fused._UNIT`) to a private list first.
    """
    merged: dict[int, dict[tuple, list[tuple]]] = {}
    for result in shard_results:
        for nid, groups in result.items():
            target = merged.setdefault(nid, {})
            if tick is not None and groups:
                tick(sum(len(rows) for rows in groups.values()))
            if not target:
                target.update(groups)
                continue
            for key, rows in groups.items():
                bucket = target.get(key)
                if bucket is None:
                    target[key] = rows
                elif isinstance(bucket, list):
                    bucket.extend(rows)
                else:  # shared immutable marker: copy before extending
                    target[key] = list(bucket) + list(rows)
    return merged


def parallel_reduce(
    tree: JoinTree,
    cq: CQ,
    instance: Instance,
    interner: Interner,
    workers: int = 2,
    counter: StepCounter | None = None,
    decode_top: frozenset[int] | set[int] = frozenset(),
    pool: str = "auto",
    executor: Executor | None = None,
    stats_out: dict | None = None,
    deadline: "Deadline | None" = None,
    faults=None,
    recovery: ShardRecovery | None = None,
) -> FusedReduction:
    """Ground globally, window-shard zero-copy, group in parallel, merge,
    then sweep: the parallel twin of
    :func:`~repro.yannakakis.fused.fused_reduce`.

    Produces a :class:`~repro.yannakakis.fused.FusedReduction` over
    *interner* equivalent to the fused pipeline's output (nodes in
    *decode_top* — which must be upward-closed — in value space, the rest
    in id space). ``workers`` is the shard count and the pool width;
    ``pool`` selects the backend (``"auto"`` by default — see the module
    docstring); ``executor``, when given, overrides pool construction (it
    is not shut down, but *is* replaced for retries when it breaks — via
    ``recovery.executor_factory`` when available). ``workers=1`` skips
    the pool entirely but still exercises the shard/merge code path.
    *stats_out*, when given, records the backend decision, the serialized
    bytes each worker task shipped (zero for in-process backends), and
    the recovery ladder's ``shard_retries`` / ``pool_rebuilds`` /
    ``fallbacks`` / ``degraded``. *deadline* is checked at every phase
    boundary; *faults* (defaulting to the process-wide installed plan)
    is handed to every shard task; *recovery* supplies the retry policy
    and the counters/executor-factory of a long-lived caller.
    """
    backend = _resolve_backend(workers, pool, executor)
    k = backend.workers
    if faults is None:
        faults = active_fault_hook()
    rec = recovery if recovery is not None else ShardRecovery()
    degradation = {"shard_retries": 0, "pool_rebuilds": 0, "fallbacks": 0}

    def _note(**deltas: int) -> None:
        for name, delta in deltas.items():
            degradation[name] += delta
        rec.note(**deltas)

    tick = tick_or_none(counter)
    specs = _atom_specs(tree, decode_top)
    if deadline is not None:
        deadline.check("parallel:ground")
    if faults is not None:
        faults.fire("grounding")
    schema_instance = Instance(
        {
            symbol: instance.get(symbol, arity)
            for symbol, arity in cq.schema.items()
        }
    )
    grounded = ground_atoms_columnar(
        cq, schema_instance, interner, counter, backed=True
    )
    lite = [(g.vars, g.columns, g.row_count) for g in grounded]
    per_atom = [shard_bounds(g.row_count, k) for g in grounded]
    windows = [
        tuple(per_atom[a][i] for a in range(len(grounded)))
        for i in range(k)
    ]
    if stats_out is not None:
        stats_out["backend"] = backend.kind
        stats_out["workers"] = k
        stats_out["reason"] = backend.reason
        stats_out["task_bytes"] = [0] * k
    if deadline is not None:
        deadline.check("parallel:dispatch")
    if faults is not None:
        faults.fire("dispatch")

    def _serial_fallback(i: int) -> dict:
        """Last rung: run shard *i* in the parent, fault-free — this is
        the fused pipeline's own materialize+group stage over the same
        global-id columns, so answers cannot differ."""
        _note(fallbacks=1)
        return _shard_groups(lite, specs, windows[i])

    if k == 1 or backend.kind == SERIAL:
        shard_results = []
        for i, w in enumerate(windows):
            try:
                shard_results.append(
                    _shard_groups(lite, specs, w, i, faults, 0)
                )
            except Exception:
                result = None
                for attempt in range(1, rec.retry.retries + 1):
                    _backoff(rec.retry.delay(attempt), deadline)
                    _note(shard_retries=1)
                    try:
                        result = _shard_groups(lite, specs, w, i, faults, attempt)
                        break
                    except Exception:
                        result = None
                shard_results.append(
                    result if result is not None else _serial_fallback(i)
                )
            if deadline is not None:
                deadline.check("parallel:collect")
    else:
        pool_executor, own_executor = _pool_executor(backend, executor)
        arena: SharedShardArena | None = None
        try:
            if backend.kind == PROCESS:
                # the arena outlives retries (closed in the outer finally):
                # a replacement executor's workers attach to the same
                # segments, and the parent owning every unlink is what
                # makes a hard worker crash leak-free by construction
                arena = SharedShardArena()
                block = [
                    (
                        g.vars,
                        g.row_count,
                        tuple(arena.publish(c) for c in g.columns),
                    )
                    for g in grounded
                ]
                if stats_out is not None:
                    stats_out["task_bytes"] = [
                        len(
                            pickle.dumps(
                                (block, specs, w),
                                pickle.HIGHEST_PROTOCOL,
                            )
                        )
                        for w in windows
                    ]
                    stats_out["segment_bytes"] = sum(
                        segment.count * 8
                        for _v, _rc, segments in block
                        for segment in segments
                    )

                def _submit(ex: Executor, i: int, attempt: int):
                    return ex.submit(
                        shard_materialize_shm,
                        block, specs, windows[i], i, faults, attempt,
                    )

            else:  # thread: workers read the parent's columns directly

                def _submit(ex: Executor, i: int, attempt: int):
                    return ex.submit(
                        _shard_groups,
                        lite, specs, windows[i], i, faults, attempt,
                    )

            shard_results, pool_executor, own_executor = (
                _dispatch_with_recovery(
                    k,
                    _submit,
                    lambda i: _shard_groups(lite, specs, windows[i]),
                    backend,
                    pool_executor,
                    own_executor,
                    rec,
                    deadline,
                    _note,
                )
            )
        finally:
            if arena is not None:
                arena.close()
            if own_executor is not None:
                own_executor.shutdown(wait=True)

    if faults is not None:
        faults.fire("merge")
    if deadline is not None:
        deadline.check("parallel:merge")
    if stats_out is not None:
        stats_out.update(degradation)
        stats_out["degraded"] = any(degradation.values())

    if len(shard_results) == 1:
        merged = shard_results[0]
    else:
        merged = _merge_id_groups(shard_results, tick)

    # top-subtree nodes decode to value space once, in the parent — after
    # the merge, so workers only ever ship ids
    value_space = {nid for nid, _ai, _kv, _rv, decode in specs if decode}
    if value_space:
        getv = interner.values.__getitem__
        for nid in value_space:
            groups = merged.get(nid)
            if groups:
                merged[nid] = {
                    tuple(map(getv, key)): [
                        tuple(map(getv, row)) for row in rows
                    ]
                    for key, rows in groups.items()
                }

    # ---- bottom-up: adopt/materialize + up-sweep ---------------------- #
    nodes: dict[int, FusedNode] = {}
    for v in tree.bottomup_order():
        node = tree.nodes[v]
        vars_v, key_vars, res_vars = node_key_split(tree, v)
        key_positions = tuple(vars_v.index(x) for x in key_vars)
        res_positions = tuple(vars_v.index(x) for x in res_vars)
        decoded = v in decode_top

        source = node.source if node.kind != ATOM else None
        checks: list[tuple[tuple[Var, ...], FusedNode]] = []
        alive = True
        for c in tree.children[v]:
            if c == source:
                continue  # projected rows match their source by construction
            child_vars = tree.nodes[c].vars
            shared = tuple(x for x in vars_v if x in child_vars)
            if not shared:
                if not nodes[c].groups:
                    alive = False
                continue
            checks.append((shared, nodes[c]))

        if not alive:
            groups: dict[tuple, list[tuple]] = {}
        elif node.kind == ATOM:
            groups = merged.get(v, {})
        else:
            groups = _project_source(
                nodes[node.source], vars_v, key_vars, res_vars,
                decoded, interner,
            )
        if checks and groups:
            groups = _up_sweep(
                groups, key_vars, res_vars, checks, decoded, interner, tick
            )
        nodes[v] = FusedNode(
            vars_v,
            key_vars,
            res_vars,
            key_positions,
            res_positions,
            groups,
            decoded,
        )

    # ---- top-down: down-sweep at group granularity (shared impl) ------ #
    return FusedReduction(nodes, down_sweep(tree, nodes, interner, tick))


def legacy_shard_payload_bytes(
    tree: JoinTree,
    cq: CQ,
    instance: Instance,
    decode_top: frozenset[int] | set[int] = frozenset(),
    workers: int = 4,
) -> list[int]:
    """Per-shard pickled task sizes of the *pre-zero-copy* design.

    The original process-pool path shipped ``(cq, shard instance, specs)``
    per worker — every shard row crossing the boundary as pickled Python
    objects. This reconstructs exactly that payload (without running it)
    so ``benchmarks/bench_parallel.py`` can gate the measured bytes-
    shipped reduction of the descriptor-based channel against it on any
    hardware, single-core containers included.
    """
    specs = _atom_specs(tree, decode_top)
    schema_instance = Instance(
        {
            symbol: instance.get(symbol, arity)
            for symbol, arity in cq.schema.items()
        }
    )
    return [
        len(pickle.dumps((cq, shard, specs), pickle.HIGHEST_PROTOCOL))
        for shard in partition_instance(schema_instance, workers)
    ]


def _project_source(
    src: FusedNode,
    vars_v: tuple[Var, ...],
    key_vars: tuple[Var, ...],
    res_vars: tuple[Var, ...],
    decoded: bool,
    interner: Interner,
) -> dict[tuple, list[tuple]]:
    """A projection node's grouping from its source child's group keys
    (the node's variables are exactly the source's grouping key, so the
    distinct keys *are* the projected rows). A value-space node fed by an
    id-space source translates per group key — the top subtree is
    upward-closed, so the reverse direction cannot occur."""
    if src.key_vars != vars_v:  # pragma: no cover - structural invariant
        raise AssertionError(
            f"projection node vars {vars_v} != source grouping key "
            f"{src.key_vars}"
        )
    rows_iter = iter(src.groups)
    if decoded and not src.decoded:
        getv = interner.values.__getitem__
        rows_iter = (tuple(map(getv, row)) for row in rows_iter)
    if key_vars == vars_v:  # residual-free projection
        return {k: [()] for k in rows_iter}
    if not key_vars:  # root-side projection: one group of residuals
        rows = list(rows_iter)
        return {(): rows} if rows else {}
    ksel = tuple_selector(tuple(vars_v.index(x) for x in key_vars))
    rsel = tuple_selector(tuple(vars_v.index(x) for x in res_vars))
    groups: dict[tuple, list[tuple]] = {}
    for row in rows_iter:
        key = ksel(row)
        bucket = groups.get(key)
        if bucket is None:
            groups[key] = [rsel(row)]
        else:
            bucket.append(rsel(row))
    return groups


def _up_sweep(
    groups: dict[tuple, list[tuple]],
    key_vars: tuple[Var, ...],
    res_vars: tuple[Var, ...],
    checks: list[tuple[tuple[Var, ...], FusedNode]],
    decoded: bool,
    interner: Interner,
    tick,
) -> dict[tuple, list[tuple]]:
    """Semijoin-filter a merged grouping against already-reduced children.

    A row survives iff its projection onto each check edge's shared
    variables hits the child's group keys (the child's grouping is keyed
    by exactly those variables — its parent is this node). Same asymptotic
    cost as the fused pipeline's compress filters, and the common shapes
    stay at C speed: a check whose shared variables live entirely in the
    grouping key filters whole *groups* through a dict comprehension, one
    confined to the residuals runs as ``compress``/``map`` over each
    group's row list; only a check straddling the key/residual split pays
    a per-row Python call. Probes against an id-space child from a
    value-space node are translated through the interner (the reverse
    cannot occur — the top subtree is upward-closed).
    """

    def _converter(child: FusedNode):
        if child.decoded == decoded:
            return None
        id_of = interner.ids.get  # value-space probe, id-space child
        return lambda t: tuple(map(id_of, t))

    key_set = set(key_vars)
    res_set = set(res_vars)
    count = sum(map(len, groups.values())) if tick is not None else 0
    straddling: list = []
    for shared, child in checks:
        cgroups = child.groups
        convert = _converter(child)
        if all(x in key_set for x in shared):
            # group-granular: survival depends on the key alone
            sel = (
                None
                if shared == key_vars
                else tuple_selector(tuple(key_vars.index(x) for x in shared))
            )
            out: dict[tuple, list[tuple]] = {}
            for k, rows in groups.items():
                probe = k if sel is None else sel(k)
                if (probe if convert is None else convert(probe)) in cgroups:
                    out[k] = rows
            groups = out
        elif all(x in res_set for x in shared):
            # residual-only: one C-level compress/map pass per group
            sel = (
                None
                if shared == res_vars
                else tuple_selector(tuple(res_vars.index(x) for x in shared))
            )
            out = {}
            for k, rows in groups.items():
                probes = rows if sel is None else map(sel, rows)
                if convert is not None:
                    probes = map(convert, probes)
                surviving = list(
                    compress(rows, map(cgroups.__contains__, probes))
                )
                if surviving:
                    out[k] = surviving
            groups = out
        else:
            straddling.append((shared, cgroups, convert))
    if straddling:
        concat = key_vars + res_vars
        sels = [
            (
                tuple_selector(tuple(concat.index(x) for x in shared)),
                cgroups,
                convert,
            )
            for shared, cgroups, convert in straddling
        ]
        out = {}
        for key, rows in groups.items():
            surviving = [
                r
                for r in rows
                if all(
                    (
                        sel(key + r)
                        if convert is None
                        else convert(sel(key + r))
                    )
                    in cgroups
                    for sel, cgroups, convert in sels
                )
            ]
            if surviving:
                out[key] = surviving
        groups = out
    if tick is not None:
        tick(count)
    return groups
