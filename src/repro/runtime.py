"""Runtime capability probing and parallel-backend auto-selection.

The parallel cold pipeline (:mod:`repro.yannakakis.parallel`) can run its
shard workers three ways, and the right one depends entirely on the
interpreter and the hardware, not on the query:

* **serial** — one core (or one worker): sharding cannot pay for its own
  overhead, so the caller should run the fused single-pass pipeline
  inline.
* **thread** — a free-threaded CPython build (3.13t+, PEP 703) with the
  GIL actually *off*: threads share the heap, so shard columns travel to
  workers for free and the pool scales with cores.
* **process** — a conventional GIL build with several cores: only
  processes can run Python in parallel, so shards ship through
  :mod:`multiprocessing.shared_memory` segments
  (:class:`~repro.database.columns.SharedShardArena`) instead of pickles.

:func:`runtime_info` probes the interpreter once (``sys._is_gil_enabled``
exists on 3.13+; its absence means the GIL is on) and
:func:`select_backend` turns that probe plus a requested worker count into
a :class:`Backend` decision with a machine-readable reason — the same
matrix DESIGN.md documents and ``BENCH_parallel.json`` records. Callers
that want to force a backend (the differential test suites do) bypass
selection by naming it: :func:`resolve_pool` maps the ``pool=`` argument
accepted by :class:`~repro.yannakakis.cdy.CDYEnumerator` — ``"auto"``,
``"thread"``, ``"process"`` or ``"serial"`` — to a :class:`Backend`.
"""

from __future__ import annotations

import os
import sys
import sysconfig
from dataclasses import dataclass

#: backend kinds a :class:`Backend` decision can name
SERIAL = "serial"
THREAD = "thread"
PROCESS = "process"

#: the pool argument value that delegates to :func:`select_backend`
AUTO = "auto"

#: every value accepted for a ``pool=`` argument
POOL_CHOICES = (AUTO, THREAD, PROCESS, SERIAL)


@dataclass(frozen=True)
class RuntimeInfo:
    """One interpreter/hardware probe, the input to backend selection.

    ``free_threaded_build`` is the *compile-time* capability
    (``Py_GIL_DISABLED``); ``gil_enabled`` is the *runtime* state — a
    free-threaded build can still run with the GIL re-enabled
    (``PYTHON_GIL=1``), in which case threads do not scale and the
    process backend wins again.
    """

    python: str
    free_threaded_build: bool
    gil_enabled: bool
    cpu_count: int


def runtime_info() -> RuntimeInfo:
    """Probe the running interpreter and hardware once.

    ``sys._is_gil_enabled`` appeared in 3.13; on older interpreters the
    GIL is unconditionally on. ``cpu_count`` falls back to 1 when the
    platform cannot say.
    """
    probe = getattr(sys, "_is_gil_enabled", None)
    return RuntimeInfo(
        python=sys.version.split()[0],
        free_threaded_build=bool(sysconfig.get_config_var("Py_GIL_DISABLED")),
        gil_enabled=True if probe is None else bool(probe()),
        cpu_count=os.cpu_count() or 1,
    )


@dataclass(frozen=True)
class Backend:
    """A backend decision: which pool kind, how wide, and why.

    ``workers`` is the *effective* worker count — auto-selection collapses
    it to 1 when the hardware cannot run anything in parallel, so callers
    can skip sharding entirely. ``reason`` is a short machine-readable
    sentence recorded in bench reports and surfaced by ``repro serve``.
    """

    kind: str
    workers: int
    reason: str


def select_backend(workers: int, info: RuntimeInfo | None = None) -> Backend:
    """Pick the parallel backend for *workers* on this interpreter.

    The selection matrix (rows: GIL state, columns: cores)::

        workers <= 1  ............................  serial (nothing to split)
        cpu_count == 1  ..........................  serial (fused wins)
        GIL off  (free-threaded), cores >= 2  ....  thread (zero-copy heap)
        GIL on,                   cores >= 2  ....  process (shm segments)
    """
    if workers < 1:
        raise ValueError("workers must be positive")
    if info is None:
        info = runtime_info()
    if workers == 1:
        return Backend(SERIAL, 1, "workers=1: nothing to parallelize")
    if info.cpu_count <= 1:
        return Backend(
            SERIAL,
            1,
            f"cpu_count={info.cpu_count}: serial fused pipeline beats "
            "sharding overhead on one core",
        )
    if not info.gil_enabled:
        return Backend(
            THREAD,
            workers,
            "free-threaded interpreter (GIL off): threads share the heap "
            "zero-copy and scale with cores",
        )
    return Backend(
        PROCESS,
        workers,
        f"GIL on, cpu_count={info.cpu_count}: process pool over "
        "shared-memory shard channels",
    )


def resolve_pool(
    pool: str, workers: int, info: RuntimeInfo | None = None
) -> Backend:
    """Resolve a ``pool=`` argument to a :class:`Backend`.

    ``"auto"`` delegates to :func:`select_backend`; an explicit kind is
    honored verbatim (the differential suites rely on forcing each
    backend regardless of the hardware), except that ``"serial"`` keeps
    the requested worker count so an inline run still exercises the
    shard/merge path deterministically.
    """
    if pool not in POOL_CHOICES:
        raise ValueError(
            f"unknown pool {pool!r}; expected one of {POOL_CHOICES}"
        )
    if workers < 1:
        raise ValueError("workers must be positive")
    if pool == AUTO:
        return select_backend(workers, info)
    return Backend(pool, workers, f"explicit pool={pool!r}")
