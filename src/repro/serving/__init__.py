"""The enumeration serving layer: sessions, cursors, batches, HTTP.

This package turns the engine's "linear preprocessing, constant delay"
guarantee into the serving property it was always about (Carmeli & Kröll,
PODS 2019): many clients paging through answer sets concurrently, none of
them re-paying preprocessing, none of them re-walking already-delivered
prefixes.

* :mod:`repro.serving.cursor` — opaque, self-contained cursor tokens
  pinned to an instance's version vector;
* :mod:`repro.serving.session` — resumable per-query sessions
  (per-session state, as the fine-grained self-join analysis of Carmeli &
  Segoufin 2022 argues, is the right unit — there is no sound *global*
  cursor across query shapes);
* :mod:`repro.serving.manager` — the bounded LRU session manager with
  token rehydration and delta-fencing;
* :mod:`repro.serving.batch` — batched opens grouped by plan signature
  and instance version;
* :mod:`repro.serving.server` — a stdlib JSON-over-HTTP front end
  (``python -m repro serve``).

Concurrency is first-class: there is no global lock. The manager layers
per-session locks and per-instance reader/writer guards over the
thread-safe engine (see DESIGN.md, "Concurrency model & parallel cold
path"), so concurrent clients page in parallel, an update runs exclusive
only against opens of *its* instance, and introspection answers while a
cold open is in flight.
"""

from .batch import BatchItem, submit_many
from .cursor import CursorToken, vector_fingerprint
from .manager import ServingStats, SessionManager
from .session import Page, Session
from .server import ServingHTTPServer, serve

__all__ = [
    "BatchItem",
    "CursorToken",
    "Page",
    "ServingHTTPServer",
    "ServingStats",
    "Session",
    "SessionManager",
    "serve",
    "submit_many",
    "vector_fingerprint",
]
