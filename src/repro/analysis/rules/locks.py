"""Lock-hierarchy rules: rank ordering, cycles, blocking calls.

The analyzer resolves every ``with``-statement item to a rank from
:data:`repro.concurrency.LOCK_RANKS` using, in order:

1. an explicit trailing ``# lock-rank: <name>`` comment on the line
   (for receivers the static maps cannot disambiguate);
2. ``.read()`` / ``.write()`` calls — :class:`~repro.concurrency.RWLock`
   guard contexts, rank from the lock's declared ``rank_name``;
3. ``.acquire(key)`` calls on attributes assigned
   ``KeyedLocks(...)`` — rank from the constructor's ``rank_name``;
4. ``self.X`` attributes assigned ``make_lock("name")`` in the
   enclosing class (then, uniquely, anywhere in the project);
5. module-level names assigned ``make_lock("name")``.

Attributes assigned a raw ``threading.Lock()`` / ``RLock()`` /
``Condition()`` are known non-ranked internals: ``Condition`` receivers
are skipped (RWLock plumbing), raw locks entering a ``with`` are flagged
``lock-unknown`` — every long-lived lock must go through
:func:`~repro.concurrency.make_lock` so the hierarchy stays total.

Checks performed:

* ``lock-order`` — inside a function, a lexically nested acquisition
  must climb strictly: holding rank *r*, only ranks > *r* may be taken.
* ``lock-cycle`` — all held→acquired edges project-wide feed one graph;
  any strongly connected component (or self-loop — two same-ranked
  locks nested) is a potential deadlock.
* ``lock-blocking`` — under a rank declared ``blocking_allowed=False``,
  calls that can block (``time.sleep``, ``open``, socket operations,
  ``Future.result``, executor ``shutdown``/``map``) are banned.
* ``lock-unknown`` — a lock-looking ``with`` item that resolves to no
  rank must gain a ``# lock-rank:`` annotation or ``make_lock``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Optional

from ...concurrency import LOCK_RANKS
from ..lint import Finding, ModuleFile, Rule, register

#: trailing annotation overriding static resolution for one with-item
_RANK_COMMENT = re.compile(r"#\s*lock-rank:\s*([\w.]+)")

#: receiver names that *look* like locks — unresolved ones are findings,
#: anything else (files, sockets, arenas) is ignored. The match must
#: start a word component (`_lock`, `lock_map`, `Lock`) so that embedded
#: substrings (`AttachedBlock`, `Clock`) stay out of scope
_LOCKISH = re.compile(r"(?<![a-z0-9])(?:lock|mutex|guard|gate)", re.IGNORECASE)

#: attribute-call names that can block the calling thread
_BLOCKING_METHODS = {
    "result",
    "shutdown",
    "map",
    "recv",
    "send",
    "sendall",
    "accept",
    "connect",
}

#: resolution outcomes
_RAW = "<raw>"
_SKIP = "<skip>"


def _call_name(node: ast.AST) -> str:
    """Dotted name of a call's func (``make_lock``, ``threading.Lock``)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _str_kwarg(call: ast.Call, name: str) -> Optional[str]:
    for kw in call.keywords:
        if kw.arg == name and isinstance(kw.value, ast.Constant):
            if isinstance(kw.value.value, str):
                return kw.value.value
    return None


def _rank_from_ctor(call: ast.Call) -> Optional[str]:
    """The rank a lock-constructing call declares, or None."""
    fn = _call_name(call.func)
    tail = fn.rsplit(".", 1)[-1]
    if tail in ("make_lock", "NamedLock"):
        if call.args and isinstance(call.args[0], ast.Constant):
            if isinstance(call.args[0].value, str):
                return call.args[0].value
        return _str_kwarg(call, "rank_name")
    if tail == "KeyedLocks":
        return _str_kwarg(call, "rank_name") or "engine.build"
    if tail == "RWLock":
        return _str_kwarg(call, "rank_name") or "serving.instance"
    if tail in ("Lock", "RLock"):
        return _RAW
    if tail == "Condition":
        return _SKIP
    return None


class _AssignmentMaps:
    """Cross-module maps from lock storage sites to declared ranks."""

    def __init__(self, modules: list[ModuleFile]) -> None:
        #: (rel_path, class_name, attr) -> rank | _RAW | _SKIP
        self.class_attr: dict[tuple[str, str, str], str] = {}
        #: attr -> set of ranks seen project-wide (cross-class fallback)
        self.attr_ranks: dict[str, set[str]] = {}
        #: (rel_path, name) -> rank for module-level assignments
        self.module_global: dict[tuple[str, str], str] = {}
        #: name -> set of ranks project-wide (cross-module fallback)
        self.name_ranks: dict[str, set[str]] = {}
        for module in modules:
            self._scan(module)

    def _scan(self, module: ModuleFile) -> None:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = (
                node.value if isinstance(node, (ast.Assign, ast.AnnAssign))
                else None
            )
            if not isinstance(value, ast.Call):
                continue
            rank = _rank_from_ctor(value)
            if rank is None:
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    cls = module.enclosing_class(node)
                    cls_name = cls.name if cls else ""
                    key = (module.rel_path, cls_name, target.attr)
                    self.class_attr[key] = rank
                    if rank not in (_RAW, _SKIP):
                        self.attr_ranks.setdefault(target.attr, set()).add(
                            rank
                        )
                elif isinstance(target, ast.Name):
                    self.module_global[(module.rel_path, target.id)] = rank
                    if rank not in (_RAW, _SKIP):
                        self.name_ranks.setdefault(target.id, set()).add(rank)


class _Resolution:
    """What one with-item turned out to be."""

    __slots__ = ("kind", "rank", "detail")

    def __init__(self, kind: str, rank: str = "", detail: str = "") -> None:
        self.kind = kind  # "rank" | "raw" | "skip" | "unknown" | "ignore"
        self.rank = rank
        self.detail = detail


def _describe(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:
        return "<expression>"


def _resolve_item(
    item: ast.expr,
    module: ModuleFile,
    maps: _AssignmentMaps,
) -> _Resolution:
    # 1. explicit annotation on the line wins
    line = module.line_at(getattr(item, "lineno", 0))
    m = _RANK_COMMENT.search(line)
    if m:
        name = m.group(1)
        if name in LOCK_RANKS:
            return _Resolution("rank", name)
        return _Resolution(
            "unknown", detail=f"# lock-rank: names undeclared rank {name!r}"
        )

    # 2./3. guard-producing calls: .read() / .write() / .acquire(key)
    if isinstance(item, ast.Call) and isinstance(item.func, ast.Attribute):
        method = item.func.attr
        if method in ("read", "write"):
            recv = item.func.value
            rank = _resolve_receiver_rank(recv, module, maps)
            if rank not in (None, _RAW, _SKIP):
                return _Resolution("rank", rank)
            return _Resolution("rank", "serving.instance")
        if method == "acquire":
            recv = item.func.value
            rank = _resolve_receiver_rank(recv, module, maps)
            if rank not in (None, _RAW, _SKIP):
                return _Resolution("rank", rank)
            return _Resolution("unknown", detail=_describe(item))

    # 4./5. plain lock expressions
    rank = _resolve_receiver_rank(item, module, maps)
    if rank == _SKIP:
        return _Resolution("skip")
    if rank == _RAW:
        return _Resolution("raw", detail=_describe(item))
    if rank is not None:
        return _Resolution("rank", rank)

    if _LOCKISH.search(_describe(item)):
        return _Resolution("unknown", detail=_describe(item))
    return _Resolution("ignore")


def _resolve_receiver_rank(
    node: ast.expr,
    module: ModuleFile,
    maps: _AssignmentMaps,
) -> Optional[str]:
    """Rank for a lock-valued expression, or _RAW / _SKIP / None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        cls = module.enclosing_class(node)
        cls_name = cls.name if cls else ""
        hit = maps.class_attr.get((module.rel_path, cls_name, node.attr))
        if hit is not None:
            return hit
        ranks = maps.attr_ranks.get(node.attr, set())
        if len(ranks) == 1:
            return next(iter(ranks))
        return None
    if isinstance(node, ast.Attribute):
        # non-self receiver (space.lock, session.lock): only a
        # project-unique attribute name resolves without an annotation
        ranks = maps.attr_ranks.get(node.attr, set())
        if len(ranks) == 1:
            return next(iter(ranks))
        return None
    if isinstance(node, ast.Name):
        hit = maps.module_global.get((module.rel_path, node.id))
        if hit is not None:
            return hit
        ranks = maps.name_ranks.get(node.id, set())
        if len(ranks) == 1:
            return next(iter(ranks))
        return None
    return None


def _blocking_call(node: ast.Call) -> Optional[str]:
    """A human-readable label when *node* is a banned blocking call."""
    fn = _call_name(node.func)
    tail = fn.rsplit(".", 1)[-1]
    if fn in ("time.sleep", "sleep"):
        return fn
    if fn == "open" or fn.startswith("socket."):
        return fn
    if isinstance(node.func, ast.Attribute) and tail in _BLOCKING_METHODS:
        # str.join-style false positives are avoided by the explicit
        # method list; ''.join is not in it
        return f".{tail}()"
    return None


@register
class LockRules(Rule):
    """Project-scope analyzer emitting the four ``lock-*`` findings."""

    id = "locks"
    description = (
        "lock-rank ordering, cycle detection, blocking calls under "
        "short-held locks, make_lock adoption"
    )
    scope = "project"

    def check_project(
        self, modules: list[ModuleFile]
    ) -> Iterable[Finding]:
        maps = _AssignmentMaps(modules)
        findings: list[Finding] = []
        # rank -> rank edges with one sample site each, project-wide
        edges: dict[tuple[str, str], Finding] = {}
        for module in modules:
            self._walk_module(module, maps, findings, edges)
        findings.extend(self._cycle_findings(edges))
        return findings

    # ------------------------------------------------------------------ #
    # per-module lexical walk

    def _walk_module(
        self,
        module: ModuleFile,
        maps: _AssignmentMaps,
        findings: list[Finding],
        edges: dict[tuple[str, str], Finding],
    ) -> None:
        def walk(node: ast.AST, held: list[tuple[str, ast.With]]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.With, ast.AsyncWith)):
                    acquired: list[str] = []
                    for item in child.items:
                        res = _resolve_item(
                            item.context_expr, module, maps
                        )
                        if res.kind == "rank":
                            self._check_order(
                                module, child, res.rank, held, findings
                            )
                            for held_rank, _ in held:
                                edge = (held_rank, res.rank)
                                edges.setdefault(
                                    edge,
                                    module.finding(
                                        "lock-cycle",
                                        child,
                                        f"edge {held_rank} -> {res.rank}",
                                    ),
                                )
                            held.append((res.rank, child))
                            acquired.append(res.rank)
                            self._check_blocking(
                                module, child, res.rank, findings
                            )
                        elif res.kind == "raw":
                            findings.append(
                                module.finding(
                                    "lock-unknown",
                                    child,
                                    f"raw threading lock {res.detail!r} "
                                    "entered a with-block; use "
                                    "make_lock() so it joins the "
                                    "declared hierarchy",
                                )
                            )
                        elif res.kind == "unknown":
                            findings.append(
                                module.finding(
                                    "lock-unknown",
                                    child,
                                    f"cannot resolve lock {res.detail!r} "
                                    "to a declared rank; annotate the "
                                    "line with '# lock-rank: <name>'",
                                )
                            )
                    walk(child, held)
                    for _ in acquired:
                        held.pop()
                elif isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    # a new scope: nothing is lexically held inside it
                    walk(child, [])
                else:
                    walk(child, held)

        walk(module.tree, [])

    def _check_order(
        self,
        module: ModuleFile,
        node: ast.With,
        new_rank: str,
        held: list[tuple[str, ast.With]],
        findings: list[Finding],
    ) -> None:
        new = LOCK_RANKS[new_rank]
        for held_rank, _ in held:
            cur = LOCK_RANKS[held_rank]
            if cur.rank >= new.rank:
                findings.append(
                    module.finding(
                        "lock-order",
                        node,
                        f"acquires {new_rank} (rank {new.rank}) while "
                        f"holding {held_rank} (rank {cur.rank}); the "
                        "hierarchy requires strictly ascending ranks",
                    )
                )

    def _check_blocking(
        self,
        module: ModuleFile,
        with_node: ast.With,
        rank_name: str,
        findings: list[Finding],
    ) -> None:
        rank = LOCK_RANKS[rank_name]
        if rank.blocking_allowed:
            return
        for stmt in with_node.body:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                label = _blocking_call(node)
                if label:
                    findings.append(
                        module.finding(
                            "lock-blocking",
                            node,
                            f"blocking call {label} while holding "
                            f"{rank_name} (declared "
                            "blocking_allowed=False — short dict/counter "
                            "ops only)",
                        )
                    )

    # ------------------------------------------------------------------ #
    # global cycle detection (Tarjan SCC + self-loops)

    def _cycle_findings(
        self, edges: dict[tuple[str, str], Finding]
    ) -> list[Finding]:
        adj: dict[str, set[str]] = {}
        for src, dst in edges:
            adj.setdefault(src, set()).add(dst)
            adj.setdefault(dst, set())
        sccs = _tarjan(adj)
        findings = []
        for comp in sccs:
            cyclic = len(comp) > 1 or (
                len(comp) == 1 and comp[0] in adj.get(comp[0], ())
            )
            if not cyclic:
                continue
            members = sorted(comp)
            sample = None
            for src, dst in edges:
                if src in comp and dst in comp:
                    sample = edges[(src, dst)]
                    break
            cycle_msg = (
                "potential deadlock cycle among ranks "
                f"{', '.join(members)}: acquisition edges close a loop"
            )
            if sample is not None:
                findings.append(
                    Finding(
                        rule="lock-cycle",
                        path=sample.path,
                        line=sample.line,
                        message=cycle_msg,
                        snippet=sample.snippet,
                    )
                )
        return findings


def _tarjan(adj: dict[str, set[str]]) -> list[list[str]]:
    """Strongly connected components of *adj* (iterative Tarjan)."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(adj.get(root, ()))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            v, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(adj.get(w, ())))))
                    advanced = True
                    break
                elif w in on_stack:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
            if low[v] == index[v]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == v:
                        break
                sccs.append(comp)

    for node in sorted(adj):
        if node not in index:
            strongconnect(node)
    return sccs
