"""Hypergraphs.

A hypergraph ``H = (V, E)`` is a set of vertices and a list of hyperedges
(non-empty vertex subsets). We keep edges as an ordered *list* — several
atoms may contribute the same hyperedge, and join-tree construction wants one
node per atom — and identify edges by their list index.

Vertices are arbitrary hashables, so this module serves both query
hypergraphs (vertices are :class:`~repro.query.terms.Var`) and data
hypergraphs used by the hyperclique reductions (vertices are domain values).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator

Vertex = Hashable
Edge = frozenset


@dataclass(frozen=True)
class Hypergraph:
    """An immutable hypergraph with indexed edges."""

    edges: tuple[Edge, ...]
    _extra_vertices: frozenset = frozenset()

    # ------------------------------------------------------------------ #
    # construction

    @staticmethod
    def from_edges(
        edges: Iterable[Iterable[Vertex]],
        vertices: Iterable[Vertex] = (),
    ) -> "Hypergraph":
        """Build a hypergraph from edge iterables (plus optional isolated vertices)."""
        es = tuple(frozenset(e) for e in edges)
        return Hypergraph(es, frozenset(vertices))

    def __post_init__(self) -> None:
        if not isinstance(self.edges, tuple):
            object.__setattr__(self, "edges", tuple(frozenset(e) for e in self.edges))

    # ------------------------------------------------------------------ #
    # basic accessors

    @property
    def vertices(self) -> frozenset:
        """All vertices (union of edges plus declared isolated vertices)."""
        out: set = set(self._extra_vertices)
        for e in self.edges:
            out |= e
        return frozenset(out)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def edges_containing(self, v: Vertex) -> list[int]:
        """Indices of edges containing vertex *v*."""
        return [i for i, e in enumerate(self.edges) if v in e]

    def adjacency(self) -> dict[Vertex, set]:
        """Vertex adjacency: u ~ v iff they co-occur in some edge."""
        adj: dict[Vertex, set] = {v: set() for v in self.vertices}
        for e in self.edges:
            for u in e:
                adj[u] |= e - {u}
        return adj

    def are_neighbors(self, u: Vertex, v: Vertex) -> bool:
        """True iff u and v appear together in some edge."""
        return any(u in e and v in e for e in self.edges)

    # ------------------------------------------------------------------ #
    # derived hypergraphs

    def with_edge(self, edge: Iterable[Vertex]) -> "Hypergraph":
        """The hypergraph ``(V, E ∪ {edge})`` used by the free-connex test."""
        return Hypergraph(self.edges + (frozenset(edge),), self._extra_vertices)

    def with_edges(self, extra: Iterable[Iterable[Vertex]]) -> "Hypergraph":
        """Add several edges at once."""
        return Hypergraph(
            self.edges + tuple(frozenset(e) for e in extra), self._extra_vertices
        )

    def restrict(self, keep: Iterable[Vertex]) -> "Hypergraph":
        """Vertex-induced restriction ``{e ∩ keep : e ∈ E}`` (empties dropped).

        Restriction preserves alpha-acyclicity: restricting every node of a
        join tree keeps the running-intersection property.
        """
        keep_set = frozenset(keep)
        restricted = tuple(e & keep_set for e in self.edges if e & keep_set)
        return Hypergraph(restricted)

    def deduplicated(self) -> "Hypergraph":
        """Remove duplicate edges (order of first occurrence kept)."""
        seen: set[Edge] = set()
        out: list[Edge] = []
        for e in self.edges:
            if e not in seen:
                seen.add(e)
                out.append(e)
        return Hypergraph(tuple(out), self._extra_vertices)

    # ------------------------------------------------------------------ #
    # connectivity

    def components(self) -> list[frozenset]:
        """Vertex sets of connected components (isolated vertices included)."""
        adj = self.adjacency()
        seen: set = set()
        comps: list[frozenset] = []
        for v in sorted(adj, key=repr):
            if v in seen:
                continue
            stack = [v]
            comp: set = set()
            while stack:
                u = stack.pop()
                if u in comp:
                    continue
                comp.add(u)
                stack.extend(adj[u] - comp)
            seen |= comp
            comps.append(frozenset(comp))
        return comps

    def is_connected(self) -> bool:
        """True iff the hypergraph has at most one connected component."""
        return len(self.components()) <= 1

    # ------------------------------------------------------------------ #

    def is_uniform(self, k: int | None = None) -> bool:
        """True iff every edge has the same number of vertices (k, if given)."""
        sizes = {len(e) for e in self.edges}
        if not sizes:
            return True
        if k is None:
            return len(sizes) == 1
        return sizes == {k}

    def __iter__(self) -> Iterator[Edge]:
        return iter(self.edges)

    def __len__(self) -> int:
        return len(self.edges)

    def __str__(self) -> str:
        def fmt(e: Edge) -> str:
            return "{" + ",".join(sorted(str(v) for v in e)) + "}"

        return "H[" + "; ".join(fmt(e) for e in self.edges) + "]"
