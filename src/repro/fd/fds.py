"""Functional dependencies over relation positions.

An FD ``R: A -> B`` (positions, 0-based) holds in an instance when any two
tuples of R agreeing on the A-positions agree on the B-positions. Remark 2
of the paper points out that the union-extension machinery composes with the
FD-extensions of Carmeli & Kröll (ICDT 2018); this module supplies the FD
vocabulary, satisfaction checking, and an FD-respecting instance repair used
by tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..database.instance import Instance
from ..database.relation import Relation
from ..exceptions import SchemaError


@dataclass(frozen=True)
class FunctionalDependency:
    """``relation: lhs -> rhs`` over 0-based argument positions."""

    relation: str
    lhs: tuple[int, ...]
    rhs: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.rhs:
            raise SchemaError("an FD needs at least one determined position")
        if set(self.lhs) & set(self.rhs):
            object.__setattr__(
                self, "rhs", tuple(p for p in self.rhs if p not in self.lhs)
            )
            if not self.rhs:
                raise SchemaError("FD determines nothing beyond its own key")

    def holds_in(self, relation: Relation) -> bool:
        seen: dict[tuple, tuple] = {}
        for t in relation.tuples:
            key = tuple(t[p] for p in self.lhs)
            val = tuple(t[p] for p in self.rhs)
            if seen.setdefault(key, val) != val:
                return False
        return True

    def __str__(self) -> str:
        lhs = ",".join(map(str, self.lhs))
        rhs = ",".join(map(str, self.rhs))
        return f"{self.relation}: {lhs} -> {rhs}"


def fd(relation: str, lhs: Sequence[int] | int, rhs: Sequence[int] | int) -> FunctionalDependency:
    """Convenience constructor accepting single positions."""
    if isinstance(lhs, int):
        lhs = (lhs,)
    if isinstance(rhs, int):
        rhs = (rhs,)
    return FunctionalDependency(relation, tuple(lhs), tuple(rhs))


def satisfies(instance: Instance, fds: Iterable[FunctionalDependency]) -> bool:
    """Does the instance satisfy every FD (absent relations trivially do)?"""
    for dependency in fds:
        if dependency.relation in instance:
            if not dependency.holds_in(instance.get(dependency.relation)):
                return False
    return True


def repair(
    instance: Instance, fds: Iterable[FunctionalDependency]
) -> Instance:
    """An FD-satisfying sub-instance: for each violated key keep the tuples
    of its first-seen value (deterministic by sorted tuple order)."""
    out = instance.copy()
    for dependency in fds:
        if dependency.relation not in out:
            continue
        relation = out.get(dependency.relation)
        chosen: dict[tuple, tuple] = {}
        kept = set()
        for t in sorted(relation.tuples, key=repr):
            key = tuple(t[p] for p in dependency.lhs)
            val = tuple(t[p] for p in dependency.rhs)
            if chosen.setdefault(key, val) == val:
                kept.add(t)
        out.set(dependency.relation, Relation(relation.arity, kept))
    return out
