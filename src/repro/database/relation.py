"""Relations: finite sets of tuples over the domain.

A relation stores its tuples in a hash set (the RAM-model lookup-table
analogue) and offers the handful of algebra operations the evaluators need:
projection, selection, semijoin. All operations return new relations;
in-place mutation goes through the *versioned mutators* (:meth:`Relation.add`,
:meth:`Relation.discard`, :meth:`Relation.apply_batch`).

Versioning: every relation carries a process-unique ``uid``, a monotone
``version`` counter and a bounded delta log of ``(op, tuple)`` entries, one
per effective mutation. :meth:`Relation.delta_since` replays the log into a
net ``(adds, removes)`` pair, which is what lets the engine maintain cached
preprocessing under updates instead of rebuilding it (the dynamic-setting
perspective of Carmeli & Kröll 2017). When the log has been truncated past
the requested version the method returns ``None`` — the caller must rebase
(re-preprocess from scratch).

Mutating ``Relation.tuples`` directly bypasses the log and leaves the
version counter stale; treat the set as read-only outside this class.
"""

from __future__ import annotations

import itertools
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Hashable, Iterable, Iterator, Sequence

from ..exceptions import SchemaError

Value = Hashable
Tuple_ = tuple

#: process-wide uid source; uids distinguish a mutated relation from a
#: replacement object that happens to reuse the same memory address.
_UIDS = itertools.count()


@dataclass
class Relation:
    """A finite relation of fixed arity."""

    arity: int
    tuples: set[tuple] = field(default_factory=set)

    #: per-relation delta-log bound; older entries are dropped, forcing a
    #: rebase for readers whose version fell behind the log window
    DELTA_LOG_LIMIT: ClassVar[int] = 1024

    def __post_init__(self) -> None:
        if self.arity < 0:
            raise SchemaError("arity must be non-negative")
        if not isinstance(self.tuples, set):
            self.tuples = set(self.tuples)
        for t in self.tuples:
            if len(t) != self.arity:
                raise SchemaError(
                    f"tuple {t!r} has arity {len(t)}, relation has arity {self.arity}"
                )
        self.uid: int = next(_UIDS)
        self.version: int = 0
        self._log: deque[tuple[str, tuple]] = deque(maxlen=self.DELTA_LOG_LIMIT)

    # ------------------------------------------------------------------ #
    # constructors

    @staticmethod
    def from_iterable(arity: int, rows: Iterable[Sequence[Value]]) -> "Relation":
        """A relation of the given arity holding *rows* (tuplified)."""
        return Relation(arity, {tuple(r) for r in rows})

    @staticmethod
    def empty(arity: int) -> "Relation":
        """An empty relation of the given arity (fresh uid and history)."""
        return Relation(arity, set())

    # ------------------------------------------------------------------ #
    # basics

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.tuples)

    def __contains__(self, t: tuple) -> bool:
        return t in self.tuples

    def __bool__(self) -> bool:
        return bool(self.tuples)

    def domain(self) -> set[Value]:
        """All values occurring in any position."""
        out: set[Value] = set()
        for t in self.tuples:
            out.update(t)
        return out

    def size_in_integers(self) -> int:
        """Contribution to the ||I|| encoding size (arity * cardinality)."""
        return self.arity * len(self.tuples)

    # ------------------------------------------------------------------ #
    # versioned mutators

    def add(self, t: Sequence[Value]) -> bool:
        """Insert a tuple; returns True iff the relation actually changed."""
        t = tuple(t)
        if len(t) != self.arity:
            raise SchemaError(f"tuple {t!r} does not match arity {self.arity}")
        if t in self.tuples:
            return False
        self.tuples.add(t)
        self.version += 1
        self._log.append(("+", t))
        return True

    def discard(self, t: Sequence[Value]) -> bool:
        """Remove a tuple if present; returns True iff it was."""
        t = tuple(t)
        if t not in self.tuples:
            return False
        self.tuples.remove(t)
        self.version += 1
        self._log.append(("-", t))
        return True

    def apply_batch(
        self,
        adds: Iterable[Sequence[Value]] = (),
        removes: Iterable[Sequence[Value]] = (),
    ) -> int:
        """Apply *removes* then *adds*; returns the number of effective changes.

        A tuple appearing in both ends up present (the add wins, being last).
        """
        changed = 0
        for t in removes:
            changed += self.discard(t)
        for t in adds:
            changed += self.add(t)
        return changed

    # ------------------------------------------------------------------ #
    # delta log

    @property
    def log_floor(self) -> int:
        """The oldest version the delta log can still replay from."""
        return self.version - len(self._log)

    def delta_since(self, version: int) -> tuple[set[tuple], set[tuple]] | None:
        """Net ``(adds, removes)`` since *version*, or None if a rebase is
        required (the log was truncated past *version*, or *version* is from
        the future of this relation)."""
        if version == self.version:
            return set(), set()
        if version < self.log_floor or version > self.version:
            return None
        adds: set[tuple] = set()
        removes: set[tuple] = set()
        skip = len(self._log) - (self.version - version)
        for op, t in itertools.islice(self._log, skip, None):
            if op == "+":
                if t in removes:
                    removes.discard(t)
                else:
                    adds.add(t)
            else:
                if t in adds:
                    adds.discard(t)
                else:
                    removes.add(t)
        return adds, removes

    # ------------------------------------------------------------------ #
    # algebra

    def project(self, positions: Sequence[int]) -> "Relation":
        """Duplicate-eliminating projection onto the given positions."""
        return Relation(
            len(positions), {tuple(t[p] for p in positions) for t in self.tuples}
        )

    def select(self, predicate: Callable[[tuple], bool]) -> "Relation":
        """Generic selection."""
        return Relation(self.arity, {t for t in self.tuples if predicate(t)})

    def select_equal_positions(self, groups: Iterable[Sequence[int]]) -> "Relation":
        """Keep tuples whose values agree inside every position group
        (normalizes atoms with repeated variables)."""
        groups = [list(g) for g in groups]

        def ok(t: tuple) -> bool:
            return all(len({t[p] for p in g}) == 1 for g in groups)

        return self.select(ok)

    def select_constants(self, bindings: dict[int, Value]) -> "Relation":
        """Keep tuples with the given constant at the given positions."""
        return self.select(lambda t: all(t[p] == v for p, v in bindings.items()))

    def copy(self) -> "Relation":
        """A shallow copy: fresh tuple set, fresh uid/version/log."""
        return Relation(self.arity, set(self.tuples))

    def rename_apart(self) -> "Relation":
        """Deprecated misnomer for :meth:`copy` (it never renamed anything)."""
        warnings.warn(
            "Relation.rename_apart() is deprecated; use Relation.copy()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.copy()

    def union(self, other: "Relation") -> "Relation":
        """A new relation holding both tuple sets (arities must agree)."""
        if other.arity != self.arity:
            raise SchemaError("union of relations with different arities")
        return Relation(self.arity, self.tuples | other.tuples)

    def __str__(self) -> str:
        return f"Relation(arity={self.arity}, |R|={len(self.tuples)})"
