# lint-as: src/repro/_corpus/lock_blocking.py
"""Seeded violation: blocking calls under a blocking_allowed=False rank."""

import time

from repro.concurrency import make_lock

stats_lock = make_lock("counters")  # blocking_allowed=False


def sleepy(future) -> None:
    with stats_lock:
        time.sleep(0.5)  # lock-blocking
        future.result()  # lock-blocking
