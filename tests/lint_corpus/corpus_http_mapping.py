# lint-as: src/repro/serving/server.py
"""Seeded violation: a request-handler except clause that neither
replies, assigns a status tuple, nor re-raises (the lint-as directive
puts this file at the serving front end's path)."""


class BrokenRequestHandler:
    def do_GET(self) -> None:
        try:
            self.dispatch()
        except Exception as exc:  # http-mapping: client hangs
            self.log = repr(exc)
