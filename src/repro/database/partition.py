"""Partitioning of instances into shards for parallel preprocessing.

The cold preprocessing pass is the only super-linear-feeling phase left in
the serving stack (everything warm is O(|Δ|) or O(page)), so it is the one
worth spreading across cores. Two partitioning schemes serve two shapes of
distribution:

* **hash sharding** (:func:`partition_rows` / :func:`partition_instance`)
  splits a relation's *tuple set* into ``k`` disjoint shards by a
  **stable** tuple hash (:func:`stable_hash`, CRC-32 over a canonical
  byte encoding). Stability matters: the builtin ``hash()`` of strings is
  salted per process (``PYTHONHASHSEED``), so a parent and a spawned pool
  worker could disagree about a tuple's shard — the regression suite
  round-trips a partition through a spawned interpreter to pin this down.
  This is the scheme for distributing *raw tuples* (the incremental cold
  build's grounding stage, which ships shard instances to workers).
* **range sharding** (:func:`shard_bounds`) cuts ``range(n)`` into ``k``
  contiguous, balanced ``[start, stop)`` windows. This is the scheme for
  the zero-copy parallel reducer: grounded rows already sit in flat id
  columns, any index partition of distinct rows keeps the shard merge
  dedup-free, and a contiguous window is a zero-copy
  :meth:`~repro.database.columns.IdColumn.slice` — no hashing, no row
  movement, perfect balance (±1).

Properties the parallel reducer (:mod:`repro.yannakakis.parallel`) relies
on: every row lands in exactly one shard (grounding's projection is
injective on selection survivors, see :mod:`repro.yannakakis.grounding`,
so per-shard groupings merge by plain key-wise concatenation with no dedup
pass), and the assignment is deterministic across processes.
"""

from __future__ import annotations

import struct
import zlib

from .instance import Instance
from .relation import Relation

_INT64 = struct.Struct("<q")
_FLOAT = struct.Struct("<d")
_LEN = struct.Struct("<I")

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def _encode(value, out: bytearray) -> None:
    """Append a canonical, process-independent byte encoding of *value*.

    Tag bytes keep distinct types and nestings from colliding; every
    variable-length payload is length-prefixed. ``bool`` deliberately
    encodes as its integer value — ``True == 1`` as a dict/set element,
    so equal values must shard together. Unknown (but hashable) types
    fall back to their ``repr``, which is deterministic for the types
    that survive into relations.
    """
    if isinstance(value, int):  # bool included: True == 1 must co-shard
        if _INT64_MIN <= value <= _INT64_MAX:
            out += b"i"
            out += _INT64.pack(value)
        else:
            payload = str(value).encode()
            out += b"I"
            out += _LEN.pack(len(payload))
            out += payload
    elif isinstance(value, str):
        payload = value.encode("utf-8", "surrogatepass")
        out += b"s"
        out += _LEN.pack(len(payload))
        out += payload
    elif isinstance(value, bytes):
        out += b"b"
        out += _LEN.pack(len(value))
        out += value
    elif isinstance(value, float):
        out += b"f"
        out += _FLOAT.pack(value)
    elif value is None:
        out += b"n"
    elif isinstance(value, tuple):
        out += b"("
        out += _LEN.pack(len(value))
        for item in value:
            _encode(item, out)
        out += b")"
    else:
        payload = repr(value).encode("utf-8", "surrogatepass")
        out += b"r"
        out += _LEN.pack(len(payload))
        out += payload


def stable_hash(value) -> int:
    """A process-independent 32-bit hash of a (possibly nested) tuple.

    CRC-32 over the canonical encoding of :func:`_encode` — unlike the
    builtin ``hash()`` it is unaffected by ``PYTHONHASHSEED``, so shard
    assignment agrees between a parent and any spawned worker. Not a
    cryptographic hash; it only needs uniformity and stability.
    """
    out = bytearray()
    _encode(value, out)
    return zlib.crc32(bytes(out))


def shard_bounds(n: int, k: int) -> list[tuple[int, int]]:
    """``k`` contiguous ``[start, stop)`` windows covering ``range(n)``.

    Balanced to ±1 row (the first ``n % k`` shards get the extra row);
    trailing shards are empty when ``k > n``. This is the zero-copy
    reducer's row partition: windows slice flat id columns without
    copying or hashing.
    """
    if k < 1:
        raise ValueError("shard count must be positive")
    base, extra = divmod(n, k)
    bounds = []
    start = 0
    for i in range(k):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def partition_rows(rows, k: int) -> list[list[tuple]]:
    """Split an iterable of tuples into ``k`` disjoint hash shards.

    Returns a list of ``k`` row lists (some possibly empty). ``k=1``
    returns everything in one shard without hashing. Assignment uses
    :func:`stable_hash`, so it is reproducible across processes and
    interpreter restarts.
    """
    if k < 1:
        raise ValueError("shard count must be positive")
    if k == 1:
        return [list(rows)]
    shards: list[list[tuple]] = [[] for _ in range(k)]
    for t in rows:
        shards[stable_hash(t) % k].append(t)
    return shards


def partition_instance(instance: Instance, k: int) -> list[Instance]:
    """Hash-partition every relation of *instance* into ``k`` shard
    instances.

    Shard ``i`` holds, for every relation symbol, a fresh
    :class:`~repro.database.relation.Relation` (same arity, fresh uid —
    shards have no version history in common with the source) containing
    the source tuples whose stable hash lands in shard ``i``. The shards'
    relations are disjoint and their union is the source instance.
    """
    if k < 1:
        raise ValueError("shard count must be positive")
    shards = [Instance() for _ in range(k)]
    for symbol, relation in instance.relations.items():
        for i, rows in enumerate(partition_rows(relation.tuples, k)):
            shards[i].relations[symbol] = Relation(relation.arity, set(rows))
    return shards
