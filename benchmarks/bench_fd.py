"""R2 — Remark 2: functional dependencies + union extensions.

Claims regenerated:
* the matrix-multiplication query becomes free-connex under A: 0 -> 1 and
  enumerates with constant delay over FD-satisfying instances;
* a union that is intractable without FDs classifies tractable after
  FD-extending its members (Remark 2's composition).
"""

import pytest

from repro.core import Status
from repro.database import random_instance_for
from repro.enumeration import profile_steps
from repro.fd import FDEnumerator, classify_under_fds, fd, repair
from repro.naive import evaluate_cq
from repro.query import parse_cq, parse_ucq

PI = parse_cq("Pi(x, y) <- A(x, z), B(z, y)")
KEY = fd("A", 0, 1)


@pytest.mark.parametrize("n", [300, 1200])
def test_fd_enumeration(benchmark, n):
    instance = repair(
        random_instance_for(PI, n_tuples=n, domain_size=max(6, n // 6), seed=8),
        [KEY],
    )
    reference = evaluate_cq(PI, instance)

    answers = benchmark(lambda: list(FDEnumerator(PI, [KEY], instance)))

    assert set(answers) == reference
    assert len(answers) == len(set(answers))
    benchmark.extra_info["n"] = n
    benchmark.extra_info["answers"] = len(answers)


def test_fd_delay_shape(benchmark):
    def measure():
        rows = []
        for n in (200, 800):
            instance = repair(
                random_instance_for(
                    PI, n_tuples=n, domain_size=max(6, n // 6), seed=9
                ),
                [KEY],
            )
            profile = profile_steps(
                lambda c, i=instance: FDEnumerator(PI, [KEY], i, counter=c)
            )
            rows.append((n, profile.max_delay))
        return rows

    rows = benchmark(measure)
    assert max(d for _n, d in rows) <= 15
    benchmark.extra_info["rows (n, max_delay)"] = rows


def test_remark2_union_classification(benchmark):
    union = parse_ucq(
        "Q1(x, y) <- A(x, z), B(z, y) ; Q2(x, y) <- A(x, y), B(y, w)"
    )

    def classify_both():
        return (
            classify_under_fds(union, []),
            classify_under_fds(union, [fd("A", 0, 1), fd("B", 0, 1)]),
        )

    without, with_fds = benchmark(classify_both)
    assert without.status is Status.INTRACTABLE
    assert with_fds.status is Status.TRACTABLE
    benchmark.extra_info["without"] = without.statement
    benchmark.extra_info["with_fds"] = with_fds.statement
