"""Differential property suite for the engine facade.

Runs 200+ seeded random (query, instance) cases through ``Engine.execute``
and checks, against the naive ground-truth evaluator, that

* the emitted answer *set* equals ``naive.evaluate_ucq``,
* no answer is emitted twice (every evaluator behind the facade must
  deduplicate),
* all four dispatch branches (CDY, Algorithm 1, Theorem 12, naive) are
  exercised, and
* plan-cache hits — exact and isomorphic — return the same answers as a
  cache-cold engine.

One engine is shared across the whole suite on purpose: later cases hit the
plan cache of earlier ones, so the differential check covers warm plans,
renamed-isomorphic plans and the preprocessing-reuse path, not just cold
classification.
"""

from __future__ import annotations

import random
import zlib

import pytest

from repro.database import random_instance_for
from repro.engine import Engine, PlanKind
from repro.naive import evaluate_ucq
from repro.query import parse_ucq
from repro.query.ucq import UCQ

# (name, query text, expected dispatch branch) — branches per the engine's
# ladder: single free-connex CQ → CDY; all-free-connex union → Algorithm 1;
# free-connex union extension → Theorem 12; everything else → naive.
TEMPLATES: list[tuple[str, str, PlanKind]] = [
    # --- single free-connex CQs (CDY) --------------------------------- #
    ("edge", "Q(x, y) <- R(x, y)", PlanKind.CDY),
    ("semijoin", "Q(x, y) <- R(x, y), S(y, z)", PlanKind.CDY),
    ("full_path", "Q(x, y, z) <- R(x, y), S(y, z)", PlanKind.CDY),
    ("chain4_proj", "Q(x, y) <- R(x, y), S(y, z), T(z, w)", PlanKind.CDY),
    ("star_proj", "Q(c, x) <- R(c, x), S(c, y), T(c, z)", PlanKind.CDY),
    ("single_var", "Q(x) <- R(x, y), S(y, z)", PlanKind.CDY),
    # --- unions of free-connex CQs (Theorem 4 / Algorithm 1) ----------- #
    ("union_edges", "Q1(x, y) <- R(x, y) ; Q2(x, y) <- S(x, y)", PlanKind.UNION_TRACTABLE),
    (
        "union_semijoins",
        "Q1(x, y) <- R(x, y), S(y, z) ; Q2(x, y) <- T(x, y), U(y, w)",
        PlanKind.UNION_TRACTABLE,
    ),
    (
        "union_three",
        "Q1(x, y) <- R(x, y) ; Q2(x, y) <- S(x, y), T(y, u) ; Q3(x, y) <- V(x, y)",
        PlanKind.UNION_TRACTABLE,
    ),
    (
        "union_flipped_heads",
        "Q1(x, y) <- R(x, y), S(y, z) ; Q2(y, x) <- T(x, y)",
        PlanKind.UNION_TRACTABLE,
    ),
    # --- free-connex union extensions (Theorem 12) --------------------- #
    (
        "example_2",
        "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w) ; Q2(x, y, w) <- R1(x, y), R2(y, w)",
        PlanKind.UNION_EXTENSION,
    ),
    (
        "example_2_wide",
        "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w), R4(w, u) ; "
        "Q2(x, y, w) <- R1(x, y), R2(y, w)",
        PlanKind.UNION_EXTENSION,
    ),
    # --- no constant-delay evaluator known (naive fallback) ------------ #
    ("matmul", "Q(x, y) <- R(x, z), S(z, y)", PlanKind.NAIVE),
    ("triangle", "Q(x, y, z) <- R(x, y), S(y, z), T(z, x)", PlanKind.NAIVE),
    (
        "hard_union",
        "Q1(x, y) <- R(x, z), S(z, y) ; Q2(x, y) <- T(x, w), U(w, y)",
        PlanKind.NAIVE,
    ),
    ("self_join", "Q(x, y) <- R(x, z), R(z, y)", PlanKind.NAIVE),
]

SEEDS_PER_TEMPLATE = 13  # 16 templates * 13 seeds = 208 cases


def _iso_rename(ucq_text: str, tag: str) -> str:
    """A crude but collision-free renaming producing an isomorphic query."""
    out = ucq_text
    for sym in ("R1", "R2", "R3", "R4", "R", "S", "T", "U", "V", "W"):
        out = out.replace(f"{sym}(", f"X{tag}{sym}(")
    for var in ("x", "y", "z", "w", "u", "c"):
        out = out.replace(f"{var},", f"{var}{tag},").replace(
            f"{var})", f"{var}{tag})"
        )
    return out


@pytest.fixture(scope="module")
def shared_engine() -> Engine:
    return Engine()


def _case_seed(*parts) -> int:
    """Deterministic across processes (unlike hash() on strings)."""
    return zlib.crc32(":".join(map(str, parts)).encode())


def _random_case(ucq: UCQ, seed: int):
    rng = random.Random(seed)
    return random_instance_for(
        ucq,
        n_tuples=rng.randrange(5, 60),
        domain_size=rng.randrange(3, 12),
        seed=rng.randrange(1 << 30),
    )


@pytest.mark.parametrize("name,text,kind", TEMPLATES, ids=[t[0] for t in TEMPLATES])
def test_engine_matches_naive_oracle(shared_engine, name, text, kind):
    """≥200 random cases: answer set equality + no duplicate emissions."""
    ucq = parse_ucq(text)
    plan = shared_engine.plan(ucq)
    assert plan.kind is kind, f"{name}: dispatched {plan.kind}, expected {kind}"
    for seed in range(SEEDS_PER_TEMPLATE):
        instance = _random_case(ucq, _case_seed(name, seed))
        emitted = list(shared_engine.execute(ucq, instance))
        assert len(emitted) == len(set(emitted)), (
            f"{name} seed {seed}: duplicate answers emitted"
        )
        assert set(emitted) == evaluate_ucq(ucq, instance), (
            f"{name} seed {seed}: answer set mismatch"
        )


@pytest.mark.parametrize(
    "name,text,kind",
    [t for t in TEMPLATES if t[0] in
     ("chain4_proj", "union_semijoins", "example_2", "matmul")],
    ids=["chain4_proj", "union_semijoins", "example_2", "matmul"],
)
def test_isomorphic_replay_matches_naive_oracle(shared_engine, name, text, kind):
    """Renamed-isomorphic queries replay cached plans with correct answers."""
    shared_engine.plan(parse_ucq(text))  # ensure the representative is cached
    for tag in ("a", "b"):
        iso = parse_ucq(_iso_rename(text, tag))
        before = shared_engine.stats.classifications
        plan = shared_engine.plan(iso)
        assert plan.kind is kind
        assert shared_engine.stats.classifications == before, (
            f"{name}/{tag}: isomorphic query was re-classified"
        )
        for seed in (0, 1, 2):
            instance = _random_case(iso, _case_seed(name, tag, seed))
            emitted = list(shared_engine.execute(iso, instance))
            assert len(emitted) == len(set(emitted))
            assert set(emitted) == evaluate_ucq(iso, instance)


def test_all_four_branches_covered(shared_engine):
    kinds = {kind for _, _, kind in TEMPLATES}
    assert kinds == set(PlanKind)


def test_case_count_meets_floor():
    """The suite's differential case count stays at or above the spec's 200."""
    base = len(TEMPLATES) * SEEDS_PER_TEMPLATE
    iso = 4 * 2 * 3  # isomorphic replay cases
    assert base + iso >= 200


def test_repeated_execution_same_instance_is_consistent(shared_engine):
    """The preprocessing-reuse path returns identical answers every time."""
    ucq = parse_ucq("Q(x, y) <- R(x, y), S(y, z), T(z, w)")
    instance = _random_case(ucq, 424242)
    reference = evaluate_ucq(ucq, instance)
    for _ in range(3):
        emitted = list(shared_engine.execute(ucq, instance))
        assert len(emitted) == len(set(emitted))
        assert set(emitted) == reference
    assert shared_engine.stats.prep_hits >= 2


def test_plan_cache_bounded_even_when_signatures_collide():
    """Non-isomorphic queries sharing a signature bucket must still respect
    the LRU's maxsize (single-bucket eviction sheds oldest plans)."""
    from types import SimpleNamespace

    from repro.engine.cache import PlanCache

    cache = PlanCache(maxsize=3)
    shared_signature = ("collision",)
    plans = [
        SimpleNamespace(signature=shared_signature, ucq=object(), hits=0)
        for _ in range(6)
    ]
    evicted = sum(cache.store(p) for p in plans)
    assert len(cache) == 3
    assert evicted == 3
    # the newest plans survive
    hit = cache.lookup(plans[-1].ucq, shared_signature)
    assert hit is not None and hit[0] is plans[-1]


def test_mutation_between_calls_is_seen(shared_engine):
    """Adding tuples after a warm call must invalidate cached preprocessing."""
    ucq = parse_ucq("Q(x, y) <- R(x, y), S(y, z)")
    instance = _random_case(ucq, 777)
    set(shared_engine.execute(ucq, instance))
    instance.get("R").add((901, 902))
    instance.get("S").add((902, 903))
    answers = set(shared_engine.execute(ucq, instance))
    assert answers == evaluate_ucq(ucq, instance)
    assert (901, 902) in answers
