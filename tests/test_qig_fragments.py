"""QIG construction, Bron–Kerbosch, and fragment-sharing differentials.

The multi-query layer must be invisible in the answers: for any batch,
:meth:`Engine.execute_many` (fragment-shared preprocessing) and member-by-
member :meth:`Engine.execute` on a cold engine must produce identical
answer sets — across overlapping chains and stars, self-joins, constants,
and relation renamings. The structural pieces (fragment signatures, the
intersection graph, maximal cliques with pivoting) are additionally
checked against brute force.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.database import random_instance_for
from repro.engine import Engine, fragment_candidates
from repro.engine.fragments import FragmentCache, fragment_reduce
from repro.hypergraph import Hypergraph, build_ext_connex_tree
from repro.query import parse_cq, parse_ucq
from repro.query.qig import QIG, fragment_signature
from repro.yannakakis import CDYEnumerator

# ---------------------------------------------------------------------- #
# fragment signatures


def _candidates(query: str):
    cq = parse_cq(query)
    ext = build_ext_connex_tree(
        Hypergraph.from_edges(a.variable_set for a in cq.atoms), cq.free
    )
    return cq, ext, fragment_candidates(ext, cq)


def test_signature_invariant_under_variable_renaming():
    _, _, c1 = _candidates("Q(x) <- A(x), R(x, y), S(y, z), T(z, w)")
    _, _, c2 = _candidates("Q(u) <- A(u), R(u, p), S(p, q), T(q, r)")
    assert sorted(c.signature for c in c1) == sorted(
        c.signature for c in c2
    )


def test_signature_keeps_relation_symbols_and_constants():
    _, _, base = _candidates("Q(x) <- A(x), R(x, y), S(y, z), T(z, w)")
    _, _, renamed_rel = _candidates("Q(x) <- A(x), R(x, y), S(y, z), U(z, w)")
    assert sorted(c.signature for c in base) != sorted(
        c.signature for c in renamed_rel
    )
    _, _, c5 = _candidates("Q(x) <- A(x), R(x, y), S(y, 5)")
    _, _, c7 = _candidates("Q(x) <- A(x), R(x, y), S(y, 7)")
    assert sorted(c.signature for c in c5) != sorted(
        c.signature for c in c7
    )


def test_candidates_are_below_top_only():
    cq, ext, cands = _candidates("Q(x) <- A(x), R(x, y), S(y, z), T(z, w)")
    assert cands, "a deep chain must expose fragment candidates"
    for cand in cands:
        assert cand.root not in ext.top_ids
        # the candidate CQ really is the subtree: key head, subtree atoms
        assert set(cand.cq.head) == set(cand.key_vars)
        assert all(cq.atoms[i] in cand.cq.atoms for i in cand.atom_indexes)


# ---------------------------------------------------------------------- #
# QIG + Bron–Kerbosch


def _brute_force_maximal_cliques(adj):
    vertices = list(adj)
    cliques = []
    for r in range(1, len(vertices) + 1):
        for combo in itertools.combinations(vertices, r):
            if all(
                v in adj[u] for u, v in itertools.combinations(combo, 2)
            ):
                cliques.append(set(combo))
    return sorted(
        (frozenset(c) for c in cliques
         if not any(c < other for other in cliques)),
        key=lambda c: (-len(c), sorted(map(repr, c))),
    )


@pytest.mark.parametrize("seed", range(12))
def test_maximal_cliques_match_brute_force(seed):
    rng = random.Random(seed)
    n_vertices = rng.randint(2, 9)
    sig_pool = [("sig", i) for i in range(rng.randint(1, 5))]
    qig = QIG()
    for v in range(n_vertices):
        qig.add_vertex(
            v, rng.sample(sig_pool, rng.randint(0, len(sig_pool)))
        )
    adj = qig.adjacency()
    assert qig.maximal_cliques() == _brute_force_maximal_cliques(adj)
    # adjacency is symmetric, irreflexive, and justified by a shared sig
    for u, nbrs in adj.items():
        assert u not in nbrs
        for v in nbrs:
            assert u in adj[v]
            assert qig.edge_signatures(u, v)


def test_shared_signatures_count_self_overlap():
    qig = QIG()
    qig.add_vertex("only", [("sig", 1), ("sig", 1), ("sig", 2)])
    assert ("sig", 1) in qig.shared_signatures()
    assert ("sig", 2) not in qig.shared_signatures()
    # a single vertex forms its own maximal clique
    assert qig.maximal_cliques() == [frozenset({"only"})]


def test_shared_signatures_across_vertices():
    qig = QIG()
    qig.add_vertex(1, [("a",), ("b",)])
    qig.add_vertex(2, [("b",), ("c",)])
    qig.add_vertex(3, [("d",)])
    assert qig.shared_signatures() == {("b",)}
    assert qig.edge_signatures(1, 2) == frozenset({("b",)})
    assert qig.adjacency()[3] == set()


# ---------------------------------------------------------------------- #
# fragment space mechanics


def test_fragment_adoption_shares_state_and_fences_on_delta():
    q1 = parse_cq("Q1(x) <- A(x), R(x, y), S(y, z), T(z, w)")
    q2 = parse_cq("Q2(u) <- B(u), R(u, p), S(p, q), T(q, r)")
    cover = parse_cq("Q(x) <- A(x), B(x), R(x, y), S(y, z), T(z, w)")
    inst = random_instance_for(cover, n_tuples=60, domain_size=8, seed=11)
    space = FragmentCache().space(inst)

    def build(cq):
        ext = build_ext_connex_tree(
            Hypergraph.from_edges(a.variable_set for a in cq.atoms), cq.free
        )
        sigs = {c.signature for c in fragment_candidates(ext, cq)}
        red = fragment_reduce(ext, cq, inst, space, sigs)
        return CDYEnumerator(
            cq, inst, output_order=cq.head, prebuilt_ext=ext,
            prebuilt_reduction=red, interner=space.interner,
        )

    e1 = build(q1)
    cached_before = len(space)
    assert cached_before > 0
    e2 = build(q2)
    assert set(e1) == set(CDYEnumerator(q1, inst))
    assert set(e2) == set(CDYEnumerator(q2, inst))
    # q2's shared chain adopted q1's entries: no duplicate chain entries
    chain_sigs = {
        c.signature
        for c in fragment_candidates(
            build_ext_connex_tree(
                Hypergraph.from_edges(a.variable_set for a in q2.atoms),
                q2.free,
            ),
            q2,
        )
    }
    assert chain_sigs & space.signatures()

    # mutate R: stale entries must be fenced out at the next adoption
    inst.get("R", 2).add((991, 992))
    e1b = build(q1)
    assert set(e1b) == set(CDYEnumerator(q1, inst))


def test_fragment_shared_enumerator_rejects_deltas():
    q = parse_cq("Q(x) <- A(x), R(x, y), S(y, z)")
    inst = random_instance_for(q, n_tuples=40, domain_size=7, seed=5)
    space = FragmentCache().space(inst)
    ext = build_ext_connex_tree(
        Hypergraph.from_edges(a.variable_set for a in q.atoms), q.free
    )
    red = fragment_reduce(ext, q, inst, space, set())
    enum = CDYEnumerator(
        q, inst, output_order=q.head, prebuilt_ext=ext,
        prebuilt_reduction=red, interner=space.interner,
    )
    from repro.exceptions import EnumerationError

    with pytest.raises(EnumerationError):
        enum.apply_deltas({"R": ([(1, 2)], [])})


def test_prebuilt_reduction_requires_ext_and_interner():
    q = parse_cq("Q(x) <- A(x), R(x, y), S(y, z)")
    inst = random_instance_for(q, n_tuples=20, domain_size=5, seed=1)
    space = FragmentCache().space(inst)
    ext = build_ext_connex_tree(
        Hypergraph.from_edges(a.variable_set for a in q.atoms), q.free
    )
    red = fragment_reduce(ext, q, inst, space, set())
    with pytest.raises(ValueError):
        CDYEnumerator(q, inst, prebuilt_reduction=red)
    with pytest.raises(ValueError):
        CDYEnumerator(
            q, inst, prebuilt_ext=ext, prebuilt_reduction=red,
            interner=space.interner, incremental=True,
        )


# ---------------------------------------------------------------------- #
# batch differentials: fragment-shared == independent

# templates combine shared chains/stars with member-distinct atoms,
# constants, and self-joins; {i} is the member index, {c} a seeded constant
TEMPLATES = (
    "Q(x) <- A{i}(x), R(x, y), S(y, z), T(z, w)",
    "Q(x) <- B{i}(x), R(x, y), S(y, z)",
    "Q(x, v) <- A{i}(x), R(x, y), S(y, z), W(x, v)",
    "Q(x) <- A{i}(x), R(x, y), S(y, {c})",
    "Q(x) <- R(x, y), S(y, z), R(z, w)",
    "Q(x) <- A{i}(x), R(x, y), S(y, z), R(x, u), S(u, t)",
    "Q(u) <- B{i}(u), R(u, p), S(p, q), T(q, r)",
)


def _batch_queries(rng: random.Random, size: int):
    queries = []
    for i in range(size):
        template = rng.choice(TEMPLATES)
        queries.append(
            parse_ucq(template.format(i=i, c=rng.randint(0, 4)))
        )
    return queries


def _covering_instance(queries, rng: random.Random):
    schema: dict[str, int] = {}
    for q in queries:
        schema.update(q.schema)
    atoms = ", ".join(
        f"{sym}({', '.join(f'v{sym}{k}' for k in range(arity))})"
        for sym, arity in sorted(schema.items())
    )
    head_vars = ", ".join(
        f"v{sym}{k}"
        for sym, arity in sorted(schema.items())
        for k in range(arity)
    )
    cover = parse_cq(f"Q({head_vars}) <- {atoms}")
    return random_instance_for(
        cover, n_tuples=30, domain_size=6, seed=rng.randint(0, 10**6)
    )


@pytest.mark.parametrize("seed", range(110))
def test_fragment_sharing_is_invisible_in_answers(seed):
    rng = random.Random(seed)
    queries = _batch_queries(rng, rng.randint(3, 6))
    inst = _covering_instance(queries, rng)

    engine = Engine()
    batched = [sorted(stream) for stream in engine.execute_many(queries, inst)]
    for q, got in zip(queries, batched):
        independent = sorted(Engine().execute(q, inst))
        assert got == independent, q.name

    # second pass over the warm caches must agree too
    rebatched = [
        sorted(stream) for stream in engine.execute_many(queries, inst)
    ]
    assert rebatched == batched


def test_batches_actually_share_fragments():
    """At least one canonical batch must show hits, or the layer is dead."""
    queries = [
        parse_ucq(f"Q(x) <- A{i}(x), R(x, y), S(y, z), T(z, w)")
        for i in range(6)
    ]
    inst = _covering_instance(queries, random.Random(42))
    engine = Engine()
    for stream in engine.execute_many(queries, inst):
        list(stream)
    info = engine.cache_info()
    assert info["fragment_hits"] > 0
    assert info["fragment_builds"] > 0
    assert info["cached_fragments"] > 0
    assert info["fragment_spaces"] == 1


def test_prepare_many_aligns_results_and_handles_fallbacks():
    queries = [
        parse_ucq("Q(x) <- A0(x), R(x, y), S(y, z), T(z, w)"),
        parse_ucq("Q(x, y) <- R(x, z), S(z, y)"),  # naive branch
        parse_ucq("Q(x) <- A1(x), R(x, y), S(y, z), T(z, w)"),
    ]
    inst = _covering_instance(queries, random.Random(7))
    engine = Engine()
    prepared = engine.prepare_many(queries, inst)
    assert len(prepared) == len(queries)
    assert prepared[0].resumable
    assert prepared[1].enumerator is None  # naive: no resumable walk
    assert prepared[2].resumable
    for q, stream in zip(queries, engine.execute_many(queries, inst)):
        assert sorted(stream) == sorted(Engine().execute(q, inst))
