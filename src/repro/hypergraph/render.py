"""ASCII rendering of join trees and ext-S-connex trees.

Used to regenerate the paper's structural figures (Figures 1 and 2) from the
constructions, and by the examples for human-readable output. Projection
nodes are marked with ``*``; top-subtree nodes (when rendering an
:class:`~repro.hypergraph.connex.ExtConnexTree`) are marked with ``[S]``.
"""

from __future__ import annotations

from typing import Iterable

from .connex import ExtConnexTree
from .jointree import JoinTree


def _render_from(
    tree: JoinTree,
    nid: int,
    prefix: str,
    is_last: bool,
    lines: list[str],
    top_ids: frozenset[int],
    is_root: bool,
) -> None:
    node = tree.nodes[nid]
    tag = " [S]" if nid in top_ids else ""
    if is_root:
        lines.append(f"{node.label()}{tag}")
        child_prefix = ""
    else:
        connector = "`-- " if is_last else "|-- "
        lines.append(f"{prefix}{connector}{node.label()}{tag}")
        child_prefix = prefix + ("    " if is_last else "|   ")
    kids = sorted(tree.children[nid])
    for i, child in enumerate(kids):
        _render_from(
            tree, child, child_prefix, i == len(kids) - 1, lines, top_ids, False
        )


def ascii_tree(tree: JoinTree, top_ids: Iterable[int] = ()) -> str:
    """Render a join tree as an ASCII art string (one root per component)."""
    top = frozenset(top_ids)
    lines: list[str] = []
    for root in sorted(tree.roots):
        _render_from(tree, root, "", True, lines, top, True)
    return "\n".join(lines)


def ascii_connex_tree(ext: ExtConnexTree) -> str:
    """Render an ext-S-connex tree, marking the top subtree covering S."""
    header = "S = {" + ",".join(sorted(str(v) for v in ext.s)) + "}"
    return header + "\n" + ascii_tree(ext.tree, ext.top_ids)
