"""Batched session opening: isomorphic queries plan once, preprocess once.

The serving pattern the paper's complexity story pays off in is *many
clients, few query shapes*: most submissions are renamings of a handful of
templates. :func:`submit_many` exploits that by grouping a batch by
``(structural signature, instance, version fingerprint)`` before opening
sessions:

* every group is opened back-to-back, so its representative's plan (and,
  for variable renamings, its prepared preprocessing) is resident-hot in
  the engine's caches when the rest of the group arrives — one
  classification, one ext-connex-tree build, one grounding/reduction/index
  pass per group, per instance version;
* below the isomorphism tier sits the *fragment* tier: when one batch
  carries several distinct signature groups over the same instance
  version, their representatives are pre-warmed together through
  :meth:`repro.engine.Engine.prepare_many`, so join subtrees shared
  *across* groups (see :mod:`repro.engine.fragments`) are grounded and
  reduced once for the whole batch (``batch_fragment_prewarms`` counts
  these passes);
* per-item failures — parse errors, schema clashes, and also non-Repro
  exceptions escaping an open (an engine bug, a pool torn down mid-batch)
  — are isolated into the item's :class:`BatchItem` instead of failing
  the whole batch or aborting sibling groups;
* with ``manager.workers > 1`` (or an explicit ``workers`` argument),
  *different* groups fan out across a thread pool — the engine underneath
  is thread-safe and its keyed build locks guarantee each group's
  preprocessing still happens once — while members *within* a group stay
  sequential to meet the caches in the warmth-optimal order.

Version grouping is race-free against :meth:`SessionManager.apply_delta`:
each request's fingerprint is snapshotted under its instance's read
guard, and :func:`_open_group` re-checks the opened session's fingerprint
— a member whose open landed after a concurrent delta is *demoted* to its
own (fresh) group id rather than silently sharing the stale group's
warmth bookkeeping.

The actual state sharing happens in :meth:`repro.engine.Engine.prepare` /
:meth:`~repro.engine.Engine.prepare_many` — grouping just guarantees the
batch meets the caches in the optimal order and surfaces the group
structure to the caller.
"""

from __future__ import annotations

import itertools
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterator, Sequence, Union

from ..database.instance import Instance
from ..engine.signature import structural_signature
from ..exceptions import ReproError, ServingError
from ..query import parse_ucq
from ..query.ucq import UCQ
from .cursor import vector_fingerprint
from .manager import SessionManager
from .session import Page, Session


@dataclass
class BatchItem:
    """Outcome of one request inside a batch.

    ``group`` identifies which plan-sharing group the request joined
    (requests with equal group ids planned and preprocessed together; a
    member demoted by the open-time version re-check gets a fresh id of
    its own); ``error`` is set — and ``session`` is None — when this item
    failed without affecting its batch siblings.
    """

    index: int
    query: str
    group: int = -1
    session: Session | None = None
    page: Page | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        """True when the request produced a session."""
        return self.session is not None


def _fail_item(
    manager: SessionManager, item: BatchItem, exc: BaseException
) -> None:
    """Record a per-member failure without leaking serving state.

    Any session already opened for the item is closed (a no-op when a
    fence already dropped it — :meth:`SessionManager._serve_page` does
    that bookkeeping itself), so a failed member never leaves a zombie in
    the manager's LRU with no :class:`BatchItem` recording it.
    """
    if item.session is not None:
        manager.close(item.session.session_id)
        item.session = None
    if isinstance(exc, ReproError):
        item.error = str(exc)
    else:
        item.error = f"{type(exc).__name__}: {exc}"


def _open_group(
    manager: SessionManager,
    items: list[BatchItem],
    group_id: int,
    members: list[tuple[int, UCQ, str, str]],
    page_size: int | None,
    first_page: bool,
    demote: Iterator[int],
) -> None:
    """Open one plan-sharing group's sessions back-to-back (pool task).

    Each member carries the version fingerprint its group was formed
    under; a session whose open observed a *different* vector (a delta
    landed between grouping and opening) is demoted to its own group id
    from *demote* — it is still a perfectly good session, it just must
    not masquerade as sharing the group's version warmth. Failures are
    contained per member: even a non-:class:`~repro.exceptions.ReproError`
    (an engine bug, a pool torn down mid-batch) marks this item and moves
    on, leaving sibling members and other groups intact.
    """
    for index, ucq, instance_id, fingerprint in members:
        item = items[index]
        item.group = group_id
        try:
            item.session = manager.open(ucq, instance_id, page_size)
            if item.session.fingerprint != fingerprint:
                item.group = next(demote)
            if first_page:
                # serve through the shared page helper (same fence and
                # pages/answers bookkeeping as manager.fetch), but hand it
                # the session object: a large or concurrent batch may
                # already have evicted this session from the live map, and
                # that must not turn into a spurious per-item failure
                item.page = manager._serve_page(item.session, page_size)
        except Exception as exc:  # noqa: BLE001 - per-member isolation
            _fail_item(manager, item, exc)


def _prewarm_fragments(
    manager: SessionManager,
    groups: dict[tuple, list[tuple[int, UCQ, str, str]]],
) -> None:
    """Tier-2 sharing: batch-prepare one representative per signature
    group, per ``(instance, version)``.

    The isomorphism tier (the groups themselves) cannot share anything
    *across* groups; :meth:`~repro.engine.Engine.prepare_many` can — its
    QIG finds join subtrees common to distinct query shapes and builds
    each once. A group whose members rename *relations* (different
    schemas, one structural signature) contributes a second
    representative, so its common subtrees over the identity-mapped
    relations get marked shared and cached — the members' own opens then
    adopt them. Best-effort by design: the per-member opens that follow
    are correct (just colder) if this pass fails, so any exception is
    swallowed here and left to surface per member.
    """
    # keyed by instance alone: version fingerprints are scoped to each
    # query's schema, so they cannot (and need not) align across shapes —
    # prepare_many's own fences arbitrate any concurrent version drift
    by_instance: dict[str, list[UCQ]] = {}
    for (_sig, instance_id, _fingerprint), members in groups.items():
        reps = by_instance.setdefault(instance_id, [])
        rep = members[0][1]
        reps.append(rep)
        for _index, ucq, _iid, _fp in members[1:]:
            if ucq.schema.keys() != rep.schema.keys():
                reps.append(ucq)
                break
    for instance_id, reps in by_instance.items():
        if len(reps) < 2:
            continue
        try:
            with manager._guard(instance_id).read():
                manager.engine.prepare_many(
                    reps, manager.instance(instance_id)
                )
            manager.stats.add(batch_fragment_prewarms=1)
        except Exception:  # noqa: BLE001 - warmth only, never correctness
            continue


def submit_many(
    manager: SessionManager,
    requests: Sequence[tuple[Union[str, UCQ], Union[str, Instance]]],
    page_size: int | None = None,
    first_page: bool = False,
    workers: int | None = None,
) -> list[BatchItem]:
    """Open sessions for a batch of ``(query, instance)`` requests.

    Requests are grouped by plan-cache signature and instance version
    vector (see module docstring; the fingerprint is snapshotted under
    the instance's read guard, so a concurrent delta cannot co-mingle
    requests straddling it) and opened group-by-group; results come
    back in request order. With ``first_page=True`` each session's first
    page is fetched eagerly (the common "batch of first screens" serving
    call), attached as :attr:`BatchItem.page`. ``workers`` (default:
    ``manager.workers``) caps the thread pool distinct groups are fanned
    out over; 1 opens everything serially.
    """
    if workers is not None and workers < 1:
        raise ServingError("workers must be positive")
    items: list[BatchItem] = []
    groups: dict[tuple, list[tuple[int, UCQ, str, str]]] = {}
    for index, (query, instance) in enumerate(requests):
        item = BatchItem(index=index, query=str(query))
        items.append(item)
        try:
            ucq = parse_ucq(query) if isinstance(query, str) else query
            instance_id, inst = manager._resolve(instance)
            # snapshot under the read guard: the grouping key must name a
            # version this request could actually open against, not
            # whatever interleaving a concurrent apply_delta produces
            with manager._guard(instance_id).read():
                fingerprint = vector_fingerprint(
                    inst.version_vector(ucq.schema)
                )
            key = (structural_signature(ucq), instance_id, fingerprint)
        except Exception as exc:  # noqa: BLE001 - per-member isolation
            _fail_item(manager, item, exc)
            continue
        groups.setdefault(key, []).append(
            (index, ucq, instance_id, fingerprint)
        )

    if groups:
        _prewarm_fragments(manager, groups)

    # demoted members get group ids disjoint from the real groups'
    demote = itertools.count(len(groups))
    pool_width = manager.workers if workers is None else workers
    pool_width = max(1, min(pool_width, len(groups) or 1))
    if pool_width == 1 or len(groups) < 2:
        for group_id, members in enumerate(groups.values()):
            _open_group(
                manager, items, group_id, members, page_size, first_page,
                demote,
            )
    else:
        with ThreadPoolExecutor(
            max_workers=pool_width, thread_name_prefix="repro-batch"
        ) as pool:
            futures = [
                pool.submit(
                    _open_group,
                    manager,
                    items,
                    group_id,
                    members,
                    page_size,
                    first_page,
                    demote,
                )
                for group_id, members in enumerate(groups.values())
            ]
            for future in futures:
                # _open_group contains every per-member failure; anything
                # surfacing here is a harness-level bug worth propagating
                future.result()
    manager.stats.add(batches=1, batch_groups=len(groups))
    return items
