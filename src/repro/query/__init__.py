"""Query model: terms, atoms, CQs, UCQs, parsing, homomorphisms."""

from .atoms import Atom, atom, atoms_schema
from .cq import CQ
from .homomorphism import (
    body_homomorphisms,
    body_isomorphism,
    has_body_homomorphism,
    head_homomorphisms,
    is_body_isomorphic,
    is_contained,
    is_equivalent,
)
from .minimize import (
    core_of,
    is_redundant,
    minimize_ucq,
    redundant_indexes,
    remove_redundant_cqs,
)
from .parser import parse_atom, parse_cq, parse_ucq
from .terms import Const, Term, Var, is_const, is_var, var, variables
from .ucq import UCQ, union

__all__ = [
    "Atom",
    "CQ",
    "Const",
    "Term",
    "UCQ",
    "Var",
    "atom",
    "atoms_schema",
    "body_homomorphisms",
    "body_isomorphism",
    "core_of",
    "has_body_homomorphism",
    "head_homomorphisms",
    "is_body_isomorphic",
    "is_const",
    "is_contained",
    "is_equivalent",
    "is_redundant",
    "is_var",
    "minimize_ucq",
    "parse_atom",
    "parse_cq",
    "parse_ucq",
    "redundant_indexes",
    "remove_redundant_cqs",
    "union",
    "var",
    "variables",
]
