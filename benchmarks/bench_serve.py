"""Serving benchmark: offset-independent resumable paging + batched opens.

Claims measured (recorded in ``BENCH_serve.json``) — both **enforced
in-script** (non-zero exit on violation):

* **offset-independent paging** — a session's page latency must not grow
  with the offset: with n = 100,000 answers and 1,000-answer pages, the
  p50 page latency around offset 100k must be within 2x of the p50 at
  offset 0. Also resuming from an opaque cursor token deep in the stream
  (rehydration + one page) must be within 2x of a shallow resume — the
  cursor seeks in O(query size), never replaying the prefix.
* **batched warm throughput** — opening a batch of isomorphic queries
  through one shared manager (``submit_many``: plan once, preprocess
  once, page each) must be >= 5x faster than answering them
  one-query-at-a-time on cold engines (classify + plan + preprocess per
  query).

Also recorded (informational): the cumulative cost a naive offset-replay
API would pay to reach the deep offset, vs the single-page cost of a
cursor resume.

Standalone (not a pytest-benchmark file)::

    PYTHONPATH=src python benchmarks/bench_serve.py [--quick] [--out BENCH_serve.json]
"""

from __future__ import annotations

import argparse
import gc
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.database.instance import Instance  # noqa: E402
from repro.database.relation import Relation  # noqa: E402
from repro.engine import Engine  # noqa: E402
from repro.query import parse_ucq  # noqa: E402
from repro.serving import SessionManager, submit_many  # noqa: E402

QUERY = "Q(x, y) <- R(x, y), S(y, z), T(z, w)"


def chain_instance(n_answers: int, domain: int = 1000) -> Instance:
    """A deterministic chain instance with exactly *n_answers* answers.

    Every R-tuple survives the joins (S and T cover the whole Y/Z
    domain), so |Q(I)| = |R| = n_answers — which pins the page count.
    """
    return Instance(
        {
            "R": Relation.from_iterable(
                2, ((i, i % domain) for i in range(n_answers))
            ),
            "S": Relation.from_iterable(
                2, ((v, (v + 1) % domain) for v in range(domain))
            ),
            "T": Relation.from_iterable(2, ((v, 0) for v in range(domain))),
        }
    )


def bench_paging(n_answers: int, page_size: int, resume_reps: int) -> dict:
    """Walk all pages once (latency per page), then re-resume tokens at a
    shallow and a deep offset; gate both ratios at 2x."""
    manager = SessionManager(page_size=page_size)
    manager.register(chain_instance(n_answers), "db")

    # cold open once (preprocessing measured separately below)
    start = time.perf_counter()
    session = manager.open(QUERY, "db")
    open_cold_s = time.perf_counter() - start

    page_times: list[float] = []
    tokens: list[str] = []  # token issued after page i
    total = 0
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        while True:
            start = time.perf_counter()
            page = manager.fetch(session.session_id)
            page_times.append(time.perf_counter() - start)
            tokens.append(page.cursor)
            total += len(page.answers)
            if page.done:
                break
    finally:
        if gc_was_enabled:
            gc.enable()
    assert total == n_answers, f"expected {n_answers} answers, got {total}"

    pages = len(page_times)
    head = page_times[: max(3, min(10, pages // 4))]
    tail = page_times[-len(head):]
    p50_head = statistics.median(head)
    p50_tail = statistics.median(tail)

    def timed_resume(token: str) -> float:
        start = time.perf_counter()
        revived = manager.resume(token)
        manager.fetch(revived.session_id)
        return time.perf_counter() - start

    # resume + one page, shallow (after page 1) vs deep (one page before
    # the end, i.e. around the n_answers offset)
    shallow_token = tokens[0]
    deep_token = tokens[-2]
    shallow = [timed_resume(shallow_token) for _ in range(resume_reps)]
    deep = [timed_resume(deep_token) for _ in range(resume_reps)]
    p50_shallow = statistics.median(shallow)
    p50_deep = statistics.median(deep)

    # what a naive offset-based API would pay to serve the deep page:
    # re-walk the whole prefix (cumulative page cost up to the offset)
    replay_to_deep_s = sum(page_times[:-1])

    return {
        "n_answers": n_answers,
        "page_size": page_size,
        "pages": pages,
        "open_cold_s": open_cold_s,
        "page_p50_offset0_s": p50_head,
        "page_p50_deep_s": p50_tail,
        "walk_ratio_deep_over_offset0": p50_tail / p50_head,
        "resume_reps": resume_reps,
        "resume_p50_shallow_s": p50_shallow,
        "resume_p50_deep_s": p50_deep,
        "resume_ratio_deep_over_shallow": p50_deep / p50_shallow,
        "offset_replay_to_deep_s": replay_to_deep_s,
        "resume_speedup_over_replay": (
            replay_to_deep_s / p50_deep if p50_deep else float("inf")
        ),
    }


def _renamed_queries(count: int) -> list[str]:
    """*count* pairwise-isomorphic variable renamings of QUERY."""
    return [
        f"Q(x{i}, y{i}) <- R(x{i}, y{i}), S(y{i}, z{i}), T(z{i}, w{i})"
        for i in range(count)
    ]


def bench_batch(n_answers: int, batch_size: int, page_size: int) -> dict:
    """Batched warm opens vs one-query-at-a-time cold engines; gate 5x."""
    instance = chain_instance(n_answers)
    queries = _renamed_queries(batch_size)

    # cold: a fresh engine per query — classify, plan, preprocess, first page
    start = time.perf_counter()
    for text in queries:
        engine = Engine()
        ucq = parse_ucq(text)
        stream = engine.execute(ucq, instance)
        for _, _ in zip(range(page_size), stream):
            pass
    cold_s = time.perf_counter() - start

    # warm batch: one manager, grouped submit, first page each
    manager = SessionManager(page_size=page_size)
    manager.register(instance, "db")
    start = time.perf_counter()
    items = submit_many(
        manager,
        [(text, "db") for text in queries],
        first_page=True,
    )
    batch_s = time.perf_counter() - start

    assert all(item.ok for item in items), [i.error for i in items]
    assert len({item.group for item in items}) == 1, "expected one plan group"
    stats = manager.engine.stats
    assert stats.classifications == 1, "batch re-classified"
    assert stats.prep_misses == 1, "batch re-preprocessed"
    first = items[0].page.answers
    assert all(len(item.page.answers) == len(first) for item in items)

    return {
        "batch_size": batch_size,
        "n_answers": n_answers,
        "page_size": page_size,
        "sequential_cold_s": cold_s,
        "batched_warm_s": batch_s,
        "throughput_batched_over_cold": cold_s / batch_s if batch_s else float("inf"),
        "classifications": stats.classifications,
        "prep_misses": stats.prep_misses,
        "plan_groups": len({item.group for item in items}),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes for CI smoke runs"
    )
    parser.add_argument("--out", default="BENCH_serve.json")
    args = parser.parse_args(argv)

    if args.quick:
        n_answers, page_size, resume_reps = 20_000, 500, 9
        batch_n, batch_size = 5_000, 8
    else:
        n_answers, page_size, resume_reps = 100_000, 1_000, 15
        batch_n, batch_size = 50_000, 12

    report = {
        "config": {"quick": args.quick, "python": sys.version.split()[0]},
        "paging": bench_paging(n_answers, page_size, resume_reps),
        "batch": bench_batch(batch_n, batch_size, page_size),
    }

    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")

    paging = report["paging"]
    batch = report["batch"]
    print(
        f"paging: n={paging['n_answers']} page={paging['page_size']} "
        f"p50@0={paging['page_p50_offset0_s'] * 1e3:.2f}ms "
        f"p50@deep={paging['page_p50_deep_s'] * 1e3:.2f}ms "
        f"(ratio {paging['walk_ratio_deep_over_offset0']:.2f}x) "
        f"resume deep/shallow={paging['resume_ratio_deep_over_shallow']:.2f}x "
        f"resume-vs-replay={paging['resume_speedup_over_replay']:.0f}x"
    )
    print(
        f"batch: {batch['batch_size']} isomorphic queries n={batch['n_answers']} "
        f"cold={batch['sequential_cold_s'] * 1e3:.1f}ms "
        f"batched={batch['batched_warm_s'] * 1e3:.1f}ms "
        f"throughput={batch['throughput_batched_over_cold']:.1f}x "
        f"(classifications={batch['classifications']}, "
        f"prep_misses={batch['prep_misses']})"
    )
    print(f"wrote {out}")

    failures = []
    if paging["walk_ratio_deep_over_offset0"] > 2.0:
        failures.append(
            "page latency at deep offset exceeds 2x the offset-0 latency"
        )
    if paging["resume_ratio_deep_over_shallow"] > 2.0:
        failures.append(
            "deep cursor resume exceeds 2x the shallow resume latency"
        )
    if batch["throughput_batched_over_cold"] < 5.0:
        failures.append("batched warm throughput below 5x sequential cold")
    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
