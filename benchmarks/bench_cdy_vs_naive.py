"""P2 — CDY vs. naive materialization for free-connex CQs.

Claims regenerated:
* both produce identical answer sets;
* CDY's time-to-first-answer is essentially its (linear) preprocessing and
  does not depend on the answer count, while the naive evaluator must pay
  for the whole join before the caller sees anything useful;
* enumerating only the first k answers is much cheaper with CDY.
"""

import itertools

import pytest

from repro.naive import evaluate_cq
from repro.query import parse_cq
from repro.yannakakis import CDYEnumerator
from conftest import instance_for

QUERY = parse_cq("Q(x, y) <- R(x, y), S(y, z), T(z, w)")


@pytest.mark.parametrize("n", [500, 2000])
def test_cdy_full_enumeration(benchmark, n):
    instance = instance_for(QUERY, n, seed=51)
    reference = evaluate_cq(QUERY, instance)

    answers = benchmark(lambda: set(CDYEnumerator(QUERY, instance)))

    assert answers == reference
    benchmark.extra_info["n"] = n
    benchmark.extra_info["answers"] = len(answers)


@pytest.mark.parametrize("n", [500, 2000])
def test_naive_full_materialization(benchmark, n):
    instance = instance_for(QUERY, n, seed=51)
    answers = benchmark(lambda: evaluate_cq(QUERY, instance))
    benchmark.extra_info["n"] = n
    benchmark.extra_info["answers"] = len(answers)


@pytest.mark.parametrize("n", [500, 2000])
def test_cdy_first_ten_answers(benchmark, n):
    """The constant-delay selling point: the first k answers cost
    preprocessing + O(k), not the full join."""
    instance = instance_for(QUERY, n, seed=51)

    def run():
        return list(itertools.islice(CDYEnumerator(QUERY, instance), 10))

    first = benchmark(run)
    assert len(first) <= 10
    benchmark.extra_info["n"] = n
