"""Setup shim: enables legacy editable installs where `wheel` is unavailable.

All project metadata lives in pyproject.toml; this file only exists so that
`pip install -e . --no-use-pep517` (or plain `pip install -e .` on older
tooling without the wheel package) works in offline environments.
"""

from setuptools import setup

setup()
