"""A small datalog-style parser for CQs and UCQs.

Grammar (whitespace-insensitive)::

    ucq   :=  cq ((";" | "UNION" | "|") cq)*
    cq    :=  NAME "(" terms? ")" ("<-" | ":-") atom ("," atom)*
    atom  :=  NAME "(" terms ")"
    terms :=  term ("," term)*
    term  :=  IDENT            -- a variable
           |  INT              -- an integer constant
           |  "'" chars "'"    -- a string constant

Examples::

    parse_cq("Q(x, y) <- R1(x, z), R2(z, y)")
    parse_ucq("Q1(x,y) <- R(x,z), S(z,y) ; Q2(x,y) <- R(x,y), S(y,w)")
"""

from __future__ import annotations

import re
from typing import NamedTuple

from ..exceptions import ParseError
from .atoms import Atom
from .cq import CQ
from .terms import Const, Term, Var
from .ucq import UCQ

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow><-|:-)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<sep>;|\|)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<int>-?\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_']*)
    """,
    re.VERBOSE,
)

_UNION_KEYWORD = "UNION"


class _Token(NamedTuple):
    kind: str
    text: str
    pos: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ParseError(f"unexpected character {text[pos]!r}", pos)
        kind = m.lastgroup or ""
        if kind != "ws":
            tok_text = m.group()
            if kind == "ident" and tok_text.upper() == _UNION_KEYWORD:
                kind = "sep"
            tokens.append(_Token(kind, tok_text, pos))
        pos = m.end()
    tokens.append(_Token("eof", "", len(text)))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.i = 0

    # --- primitives --------------------------------------------------- #

    def peek(self) -> _Token:
        return self.tokens[self.i]

    def next(self) -> _Token:
        tok = self.tokens[self.i]
        self.i += 1
        return tok

    def expect(self, kind: str) -> _Token:
        tok = self.next()
        if tok.kind != kind:
            raise ParseError(f"expected {kind}, found {tok.text!r}", tok.pos)
        return tok

    # --- grammar ------------------------------------------------------ #

    def term(self) -> Term:
        tok = self.next()
        if tok.kind == "ident":
            return Var(tok.text)
        if tok.kind == "int":
            return Const(int(tok.text))
        if tok.kind == "string":
            return Const(tok.text[1:-1])
        raise ParseError(f"expected a term, found {tok.text!r}", tok.pos)

    def term_list(self) -> tuple[Term, ...]:
        if self.peek().kind == "rparen":
            return ()
        terms = [self.term()]
        while self.peek().kind == "comma":
            self.next()
            terms.append(self.term())
        return tuple(terms)

    def atom(self) -> Atom:
        name = self.expect("ident").text
        self.expect("lparen")
        terms = self.term_list()
        self.expect("rparen")
        return Atom(name, terms)

    def cq(self) -> CQ:
        name = self.expect("ident").text
        self.expect("lparen")
        head_terms = self.term_list()
        self.expect("rparen")
        head: list[Var] = []
        for t in head_terms:
            if not isinstance(t, Var):
                raise ParseError(f"head term {t} is not a variable")
            head.append(t)
        self.expect("arrow")
        atoms = [self.atom()]
        while self.peek().kind == "comma":
            self.next()
            atoms.append(self.atom())
        return CQ(tuple(head), tuple(atoms), name)

    def ucq(self) -> UCQ:
        cqs = [self.cq()]
        while self.peek().kind == "sep":
            self.next()
            cqs.append(self.cq())
        self.expect("eof")
        return UCQ(tuple(cqs))


def parse_cq(text: str) -> CQ:
    """Parse a single conjunctive query."""
    parser = _Parser(text)
    cq = parser.cq()
    parser.expect("eof")
    return cq


def parse_ucq(text: str) -> UCQ:
    """Parse a union of conjunctive queries separated by ';', '|' or 'UNION'."""
    return _Parser(text).ucq()


def parse_atom(text: str) -> Atom:
    """Parse a single atom (used by tests and the FD module)."""
    parser = _Parser(text)
    a = parser.atom()
    parser.expect("eof")
    return a
