"""E2 — Example 2: the flagship tractable union with an intractable member.

Claims regenerated:
* the union enumerates all answers, matching naive evaluation;
* preprocessing grows linearly with ||I|| while the number of long delays
  stays constant (Lemma 5's precondition) — the DelayClin shape;
* the Theorem 12 evaluator's total time is competitive with full naive
  materialization (same asymptotics here, since output dominates).
"""

import pytest

from repro.catalog import example
from repro.core import UCQEnumerator, find_free_connex_certificate
from repro.enumeration import profile_steps
from repro.naive import evaluate_ucq
from conftest import instance_for

UCQ2 = example("example_2").ucq
CERT = find_free_connex_certificate(UCQ2)


@pytest.mark.parametrize("n", [100, 400, 1600])
def test_theorem12_enumeration(benchmark, n):
    instance = instance_for(UCQ2, n, seed=7)
    reference = evaluate_ucq(UCQ2, instance)

    answers = benchmark(
        lambda: list(UCQEnumerator(UCQ2, instance, certificate=CERT))
    )

    assert set(answers) == reference
    assert len(answers) == len(set(answers))
    benchmark.extra_info["n"] = n
    benchmark.extra_info["answers"] = len(answers)


@pytest.mark.parametrize("n", [100, 400, 1600])
def test_naive_materialization_baseline(benchmark, n):
    instance = instance_for(UCQ2, n, seed=7)
    answers = benchmark(lambda: evaluate_ucq(UCQ2, instance))
    benchmark.extra_info["n"] = n
    benchmark.extra_info["answers"] = len(answers)


def test_delay_shape_across_sizes(benchmark):
    """One run, three sizes: long-delay count constant, preprocessing ~linear."""

    def measure():
        rows = []
        for n in (100, 400, 1600):
            instance = instance_for(UCQ2, n, seed=7)
            profile = profile_steps(
                lambda c, i=instance: UCQEnumerator(UCQ2, i, certificate=CERT, counter=c)
            )
            # construction is lazy, so "steps to first answer" plays the
            # preprocessing role
            first = profile.delays[0] if profile.delays else 0
            long_delays = [d for d in profile.delays if d > 40]
            rows.append(
                (
                    instance.size_in_integers(),
                    first,
                    len(long_delays),
                    profile.count,
                )
            )
        return rows

    rows = benchmark(measure)

    sizes = [r[0] for r in rows]
    first_answer = [r[1] for r in rows]
    long_counts = [r[2] for r in rows]
    # constant number of linear episodes, independent of n
    assert max(long_counts) <= 6
    # steps-to-first-answer roughly tracks ||I|| (not quadratic): allow 3x
    # slack on the 16x size ratio
    assert first_answer[-1] / max(1, first_answer[0]) <= 3 * (sizes[-1] / sizes[0])
    benchmark.extra_info["rows (||I||, first_answer, long_delays, answers)"] = rows
