"""Determinism rules: monotonic time only, seeded randomness, stable
hashing on every sharding/signature path.

The enumeration guarantees are only testable because runs are
reproducible: deadlines are monotonic (:class:`repro.resilience.Deadline`
wraps ``time.monotonic``), generators and the fault harness take
explicit seeds, and shard/signature partitioning uses the
``PYTHONHASHSEED``-independent :func:`repro.database.partition.stable_hash`
(builtin ``hash()`` of strings changes per process, which would scatter
one relation's tuples differently on every run — and across the *parent
and its pool workers* within one run).
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..lint import Finding, ModuleFile, Rule, register
from .locks import _call_name

#: wall-clock reads banned in the core (monotonic clocks are fine)
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
}

#: ``random.<fn>()`` module-level calls = the shared, unseeded generator
_RANDOM_MODULE_FNS = {
    "random",
    "randint",
    "randrange",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "gauss",
    "getrandbits",
    "randbytes",
    "seed",
}

#: modules where tuple/signature hashing feeds sharding or cache keys —
#: builtin ``hash()`` is banned here outright
HASH_SENSITIVE_PATHS = frozenset(
    {
        "src/repro/database/partition.py",
        "src/repro/database/columns.py",
        "src/repro/yannakakis/parallel.py",
        "src/repro/engine/signature.py",
        "src/repro/query/qig.py",
        "src/repro/serving/cursor.py",
    }
)


def _in_core(module: ModuleFile) -> bool:
    return module.rel_path.startswith("src/repro/")


@register
class WallClockRule(Rule):
    """No ``time.time()`` / ``datetime.now()`` in ``src/repro`` — use
    ``time.monotonic`` via :class:`~repro.resilience.Deadline`."""

    id = "wall-clock"
    description = "wall-clock reads in the core break deadline determinism"

    def check(self, module: ModuleFile) -> Iterable[Finding]:
        if not _in_core(module):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                fn = _call_name(node.func)
                if fn in _WALL_CLOCK:
                    yield module.finding(
                        self.id,
                        node,
                        f"wall-clock read {fn}() in core code; use the "
                        "monotonic Deadline clock (repro.resilience)",
                    )


@register
class UnseededRandomRule(Rule):
    """Randomness must come from an explicitly seeded ``random.Random``
    (or ``secrets`` for ids, which makes no reproducibility claim)."""

    id = "unseeded-random"
    description = "unseeded randomness breaks run reproducibility"

    def check(self, module: ModuleFile) -> Iterable[Finding]:
        if not _in_core(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = _call_name(node.func)
            if fn.startswith("random.") and fn.split(".", 1)[1] in (
                _RANDOM_MODULE_FNS
            ):
                yield module.finding(
                    self.id,
                    node,
                    f"{fn}() uses the shared unseeded generator; "
                    "construct random.Random(seed) explicitly",
                )
            elif fn in ("Random", "random.Random") and not (
                node.args or node.keywords
            ):
                yield module.finding(
                    self.id,
                    node,
                    "random.Random() without a seed argument; every "
                    "generator in the core takes an explicit seed",
                )


@register
class BuiltinHashRule(Rule):
    """``stable_hash`` only on sharding/signature paths."""

    id = "builtin-hash"
    description = (
        "builtin hash() is PYTHONHASHSEED-dependent; sharding and "
        "signature paths must use stable_hash"
    )

    def check(self, module: ModuleFile) -> Iterable[Finding]:
        if module.rel_path not in HASH_SENSITIVE_PATHS:
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                yield module.finding(
                    self.id,
                    node,
                    "builtin hash() on a sharding/signature path; use "
                    "stable_hash (repro.database.partition) so shard "
                    "assignment survives PYTHONHASHSEED and process "
                    "boundaries",
                )
