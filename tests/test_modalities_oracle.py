"""Brute-force oracle harness for the answer modalities (PR: modalities).

Every modality the engine offers — exact counting (:meth:`Engine.count`),
plain enumeration and ordered enumeration (``execute(order_by=...)``) —
is differentially tested against the naive evaluator over hundreds of
seeded random UCQs: chains, stars, self-joins, cycles, constants, and
1–3-member unions, covering every dispatch branch, cold and warm calls,
and re-checks after versioned delta batches.

The harness is deterministic: every random choice flows from the
per-case seed, so a failure reproduces from its parametrized id alone.
"""

from __future__ import annotations

import random

import pytest

from repro.database.generators import random_instance_for
from repro.database.instance import Instance
from repro.database.relation import Relation
from repro.engine import Engine
from repro.engine.plan import PlanKind
from repro.enumeration.steps import StepCounter
from repro.exceptions import QueryError
from repro.naive.evaluate import evaluate_cq, evaluate_ucq
from repro.query import parse_cq, parse_ucq
from repro.yannakakis.cdy import CDYEnumerator

# ---------------------------------------------------------------------- #
# random query / instance generation

REL_NAMES = ["R", "S", "T"]
HEAD_POOL = ["x", "y", "z"]
EXIST_POOL = ["u", "w", "v"]

N_CASES = 240
DOMAIN = 7
ROWS = 24


def _random_member(rng: random.Random, head_vars: list[str]) -> str:
    """One member CQ body (as atom text) containing every head variable."""
    mode = rng.randrange(4)
    atoms: list[str] = []
    if mode == 0:  # chain (relation names drawn with replacement)
        seq = head_vars + rng.sample(EXIST_POOL, rng.randrange(0, 3))
        rng.shuffle(seq)
        if len(seq) == 1:
            seq = seq + [rng.choice(EXIST_POOL)]
        for a, b in zip(seq, seq[1:]):
            atoms.append(f"{rng.choice(REL_NAMES)}({a},{b})")
    elif mode == 1:  # star around the first head variable
        center = head_vars[0]
        leaves = head_vars[1:] + rng.sample(
            EXIST_POOL, rng.randrange(1, 3)
        )
        for leaf in leaves:
            atoms.append(f"{rng.choice(REL_NAMES)}({center},{leaf})")
    elif mode == 2:  # self-join chain on a single relation symbol
        name = rng.choice(REL_NAMES)
        seq = head_vars + rng.sample(EXIST_POOL, 1)
        rng.shuffle(seq)
        if len(seq) == 1:
            seq = seq + [rng.choice(EXIST_POOL)]
        for a, b in zip(seq, seq[1:]):
            atoms.append(f"{name}({a},{b})")
    else:  # ring (cyclic bodies exercise the naive branch)
        seq = head_vars + rng.sample(
            EXIST_POOL, max(0, 3 - len(head_vars))
        )
        rng.shuffle(seq)
        if len(seq) < 2:
            seq = seq + [rng.choice(EXIST_POOL)]
        ring = seq + [seq[0]]
        for a, b in zip(ring, ring[1:]):
            atoms.append(f"{rng.choice(REL_NAMES)}({a},{b})")
    if rng.random() < 0.3:  # ground one head variable against a constant
        atoms.append(
            f"{rng.choice(REL_NAMES)}"
            f"({rng.choice(head_vars)},{rng.randrange(4)})"
        )
    return ", ".join(atoms)


def random_ucq_text(rng: random.Random) -> str:
    """A random 1–3 member UCQ; members share the head variable set."""
    head_vars = rng.sample(HEAD_POOL, rng.randrange(1, 4))
    head = ",".join(head_vars)
    n_members = rng.choice([1, 1, 1, 2, 2, 3])
    members = [
        f"Q{i}({head}) <- {_random_member(rng, list(head_vars))}"
        for i in range(n_members)
    ]
    return " ; ".join(members)


def random_instance_from_schema(
    schema: dict, rng: random.Random, rows: int = ROWS, domain: int = DOMAIN
) -> Instance:
    data = {
        symbol: Relation.from_iterable(
            arity,
            {
                tuple(rng.randrange(domain) for _ in range(arity))
                for _ in range(rows)
            },
        )
        for symbol, arity in schema.items()
    }
    return Instance(data)


def _random_delta(inst: Instance, rng: random.Random) -> None:
    """Mutate a couple of relations through the versioned mutators."""
    for symbol in sorted(inst.relations):
        if rng.random() < 0.5:
            continue
        rel = inst.relations[symbol]
        adds = [
            tuple(rng.randrange(DOMAIN) for _ in range(rel.arity))
            for _ in range(rng.randrange(1, 5))
        ]
        existing = sorted(rel)
        removes = (
            rng.sample(existing, min(len(existing), rng.randrange(0, 3)))
            if existing
            else []
        )
        rel.apply_batch(adds, removes)


# one shared engine: warm-path and cache interplay across hundreds of
# shapes is part of what the harness exercises
ENGINE = Engine()
KINDS_SEEN: set[PlanKind] = set()


def _check_ordered(ucq, inst, oracle, rng) -> None:
    head = [str(v) for v in ucq.head]
    order = rng.sample(head, rng.randrange(1, len(head) + 1))
    out = list(ENGINE.execute(ucq, inst, order_by=order))
    assert set(out) == oracle, "ordered stream changed the answer set"
    assert len(out) == len(oracle), "ordered stream duplicated answers"
    positions = [head.index(v) for v in order]
    keys = [tuple(t[p] for p in positions) for t in out]
    assert keys == sorted(keys), f"not sorted by {order}"
    if len(order) == len(head):
        # a full-head order is a total order: output is exactly sorted()
        perm_sorted = sorted(
            oracle, key=lambda t: tuple(t[p] for p in positions)
        )
        assert [tuple(t[p] for p in positions) for t in out] == [
            tuple(t[p] for p in positions) for t in perm_sorted
        ]


@pytest.mark.parametrize("seed", range(N_CASES))
def test_modalities_against_brute_force(seed: int) -> None:
    rng = random.Random(0xC0DE + seed)
    ucq = parse_ucq(random_ucq_text(rng))
    inst = random_instance_from_schema(ucq.schema, rng)
    KINDS_SEEN.add(ENGINE.plan(ucq).kind)

    oracle = evaluate_ucq(ucq, inst)
    # counting: cold, then warm (prepared state, memoized terms)
    assert ENGINE.count(ucq, inst) == len(oracle)
    assert set(ENGINE.execute(ucq, inst)) == oracle
    assert ENGINE.count(ucq, inst) == len(oracle)
    _check_ordered(ucq, inst, oracle, rng)

    # mutate through the versioned mutators and re-check every modality:
    # counts must be delta-maintained, ordered walks rebuilt or resorted
    _random_delta(inst, rng)
    oracle = evaluate_ucq(ucq, inst)
    assert ENGINE.count(ucq, inst) == len(oracle)
    assert set(ENGINE.execute(ucq, inst)) == oracle
    _check_ordered(ucq, inst, oracle, rng)


def test_generator_covers_the_dispatch_ladder() -> None:
    """The random suite must have exercised the main dispatch branches.

    (Runs after the parametrized cases — pytest executes in file order.)
    """
    assert PlanKind.CDY in KINDS_SEEN
    assert PlanKind.UNION_TRACTABLE in KINDS_SEEN
    assert PlanKind.NAIVE in KINDS_SEEN


# ---------------------------------------------------------------------- #
# fixed cases: one per dispatch branch (incl. Theorem 12), deeper checks

BRANCH_CASES = [
    ("cdy", "Q(x, y, z) <- R(x, y), S(y, z)", PlanKind.CDY),
    (
        "algorithm1",
        "Q1(x, y) <- R(x, y), S(y, z) ; Q2(x, y) <- T(x, y) ; "
        "Q3(x, y) <- R(x, y), T(y, w)",
        PlanKind.UNION_TRACTABLE,
    ),
    (
        "theorem12",
        "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w) ; "
        "Q2(x, y, w) <- R1(x, y), R2(y, w)",
        PlanKind.UNION_EXTENSION,
    ),
    ("naive", "Q(x, y) <- R(x, z), S(z, y)", PlanKind.NAIVE),
]


@pytest.mark.parametrize(
    "query,kind",
    [(q, k) for _, q, k in BRANCH_CASES],
    ids=[name for name, _, _ in BRANCH_CASES],
)
def test_count_and_order_per_branch(query: str, kind: PlanKind) -> None:
    rng = random.Random(99)
    ucq = parse_ucq(query)
    inst = random_instance_from_schema(ucq.schema, rng, rows=40)
    engine = Engine()
    assert engine.plan(ucq).kind is kind
    oracle = evaluate_ucq(ucq, inst)
    assert engine.count(ucq, inst) == len(oracle)
    _random_delta(inst, rng)
    oracle = evaluate_ucq(ucq, inst)
    assert engine.count(ucq, inst) == len(oracle)
    head = [str(v) for v in ucq.head]
    out = list(engine.execute(ucq, inst, order_by=head))
    assert out == sorted(oracle)


def test_count_is_zero_enumeration_ticks() -> None:
    """The counting DP never advances the enumeration tick counter.

    Preprocessing ticks (grounding, reduction, indexing) are allowed —
    they happen during construction — but ``count_answers`` afterwards
    must be pure arithmetic over the index supports: the acceptance
    criterion for the counting modality.
    """
    for seed in range(8):
        rng = random.Random(seed)
        cq = parse_cq("Q(x, y, z) <- R(x, y), S(y, z), T(z, w)")
        inst = random_instance_for(cq, 200, 12, seed=seed)
        counter = StepCounter()
        enum = CDYEnumerator(cq, inst, counter=counter)
        after_build = counter.count
        total = enum.count_answers()
        assert counter.count == after_build, "count_answers ticked"
        assert total == len(evaluate_cq(cq, inst))
        # the cached count is epoch-fenced, not stale
        assert enum.count_answers() == total
        assert counter.count == after_build


def test_engine_count_warm_path_shares_prepared_state() -> None:
    engine = Engine()
    ucq = parse_ucq("Q(x, y, z) <- R(x, y), S(y, z)")
    inst = random_instance_from_schema(ucq.schema, random.Random(5), rows=60)
    n = engine.count(ucq, inst)
    misses = engine.stats.prep_misses
    # execute and count share one prepared enumerator
    assert len(list(engine.execute(ucq, inst))) == n
    assert engine.count(ucq, inst) == n
    assert engine.stats.prep_misses == misses
    # a delta batch is patched, not rebuilt
    inst.relations["R"].apply_batch([(99, 98)], [])
    rebases = engine.stats.rebases
    engine.count(ucq, inst)
    assert engine.stats.rebases == rebases
    assert engine.stats.delta_applies >= 1
    assert engine.count(ucq, inst) == len(evaluate_ucq(ucq, inst))


def test_order_by_validation() -> None:
    engine = Engine()
    ucq = parse_ucq("Q(x, y) <- R(x, y)")
    inst = Instance.from_dict({"R": [(1, 2)]})
    with pytest.raises(QueryError):
        list(engine.execute(ucq, inst, order_by=["nope"]))
    with pytest.raises(QueryError):
        list(engine.execute(ucq, inst, order_by=["x", "x"]))
    with pytest.raises(QueryError):
        engine.prepare(ucq, inst, order_by=["y", "q"])


def test_ordered_prepare_round_trips_cursor_tokens() -> None:
    """Ordered cursors checkpoint/resume exactly like unordered ones."""
    rng = random.Random(11)
    ucq = parse_ucq("Q(x, y, z) <- R(x, y), S(y, z)")
    inst = random_instance_from_schema(ucq.schema, rng, rows=80)
    engine = Engine()
    # find a walk-achievable order (root-first variables); fall back to
    # asserting the materializing path if none is
    prepared = None
    for order in (["y"], ["z"], ["y", "z"], ["x"]):
        pq = engine.prepare(ucq, inst, order_by=order)
        if pq.resumable and pq.order_by is not None:
            prepared = (pq, order)
            break
    assert prepared is not None, "no walk-achievable order on a chain"
    pq, order = prepared
    straight = list(pq.enumerator.cursor(order_by=pq.order_by))
    # re-walk with a checkpoint/restore after every answer
    cursor = pq.enumerator.cursor(order_by=pq.order_by)
    resumed: list[tuple] = []
    while True:
        state = cursor.checkpoint()
        cursor = pq.enumerator.cursor(state, order_by=pq.order_by)
        try:
            resumed.append(next(cursor))
        except StopIteration:
            break
    assert resumed == straight
    positions = [list(map(str, ucq.head)).index(v) for v in order]
    keys = [tuple(t[p] for p in positions) for t in straight]
    assert keys == sorted(keys)
