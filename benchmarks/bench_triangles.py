"""E18 — Example 18: triangle finding through the union.

Claims regenerated:
* Q1's answers over the encoding are exactly the triangle base-pairs;
* Q3 returns no answers (the tagged domains kill it);
* union-based detection agrees with a combinatorial triangle counter
  (and with networkx) across random graphs.
"""

import networkx as nx
import pytest

from repro.database import er_graph
from repro.naive import evaluate_cq, evaluate_ucq
from repro.reductions import (
    decode_q1_answers,
    encode_graph,
    example18_ucq,
    has_triangle_via_ucq,
    triangle_edges_reference,
)


@pytest.mark.parametrize("n,p", [(30, 0.1), (60, 0.08)])
def test_triangle_detection_via_union(benchmark, n, p):
    edges = er_graph(n, p, seed=18)

    found = benchmark(lambda: has_triangle_via_ucq(edges, evaluate_ucq))

    graph = nx.Graph(edges)
    reference = any(nx.triangles(graph).values())
    assert found == reference
    benchmark.extra_info["n"] = n
    benchmark.extra_info["edges"] = len(edges)


@pytest.mark.parametrize("n,p", [(30, 0.1), (60, 0.08)])
def test_networkx_baseline(benchmark, n, p):
    edges = er_graph(n, p, seed=18)
    graph = nx.Graph(edges)
    total = benchmark(lambda: sum(nx.triangles(graph).values()))
    benchmark.extra_info["triangle_incidences"] = total


def test_q1_answers_are_exactly_triangles(benchmark):
    edges = er_graph(40, 0.12, seed=19)
    instance = encode_graph(edges)
    ucq = example18_ucq()

    q1_answers = benchmark(lambda: evaluate_cq(ucq[0], instance))

    assert decode_q1_answers(q1_answers) == triangle_edges_reference(edges)
    # Q3 stays silent over the tagged construction
    assert evaluate_cq(ucq[2], instance) == set()
    benchmark.extra_info["q1_answers"] = len(q1_answers)
