"""The concurrency suite: thread-safe engine core, parallel sharded
preprocessing, and the serving layer's fine-grained locks.

Four families:

* **cache regressions** — focused tests that fail on the seed code's
  unlocked caches: duplicate stores inflating ``_count`` and evicting
  live plans, concurrent misses racing past lookup-or-store;
* **shard-merge differentials** — ``pipeline="parallel"`` with
  ``k ∈ {1, 2, 4}`` against the reference pipeline on 50+ seeded queries
  (answers, membership, node states);
* **the multithreaded hammer** — threads of mixed
  ``execute``/``prepare``/``fetch``/token ``resume``/``apply_delta`` over
  one shared engine + manager, asserting differential correctness against
  single-threaded answers, cache ``_count`` invariants and unique session
  ids across 200+ mixed operations;
* **lock behaviour** — RWLock semantics, keyed-lock pruning, and the
  "stats respond during a slow open" guarantee (the old global-RLock
  design blocked introspection behind in-flight preprocessing).
"""

from __future__ import annotations

import itertools
import random
import threading
import time
from types import SimpleNamespace

import pytest

from repro.concurrency import KeyedLocks, LockedCounters, RWLock
from repro.database import (
    Instance,
    Relation,
    partition_instance,
    partition_rows,
    random_instance_for,
)
from repro.engine import Engine
from repro.engine.cache import PlanCache
from repro.engine.signature import structural_signature
from repro.exceptions import (
    CursorFencedError,
    EnumerationError,
    ReproError,
    SessionNotFoundError,
)
from repro.naive.evaluate import evaluate_ucq
from repro.query import parse_cq, parse_ucq
from repro.serving import SessionManager, submit_many
from repro.yannakakis import CDYEnumerator

# --------------------------------------------------------------------- #
# cache regressions (fail on the seed's unlocked caches)


def _plan_stub(query: str):
    ucq = parse_ucq(query)
    return SimpleNamespace(
        signature=structural_signature(ucq), ucq=ucq, hits=0
    )


def test_plan_cache_store_dedupes_equal_plans():
    """Storing the same logical plan twice (the concurrent double-miss
    shape) must not inflate ``_count`` or evict live plans."""
    cache = PlanCache(maxsize=2)
    first = _plan_stub("Q(x, y) <- R(x, y), S(y, z)")
    duplicate = _plan_stub("Q(x, y) <- R(x, y), S(y, z)")
    other = _plan_stub("Q(x) <- T(x, y)")
    assert cache.store(first) == 0
    assert cache.store(other) == 0
    # seed code: _count jumps to 3 here and evicts the LRU bucket
    assert cache.store(duplicate) == 0
    assert len(cache) == 2
    hit = cache.lookup(first.ucq, first.signature)
    assert hit is not None and hit[0] is first  # the winner stays canonical
    assert cache.lookup(other.ucq, other.signature) is not None


def test_plan_cache_add_or_get_returns_canonical_plan():
    cache = PlanCache(maxsize=4)
    first = _plan_stub("Q(x, y) <- R(x, y), S(y, z)")
    duplicate = _plan_stub("Q(x, y) <- R(x, y), S(y, z)")
    plan, evicted = cache.add_or_get(first)
    assert plan is first and evicted == 0
    plan, evicted = cache.add_or_get(duplicate)
    assert plan is first and evicted == 0
    assert len(cache) == 1


def test_plan_cache_concurrent_misses_share_one_plan():
    """Racing add_or_get calls for one query converge on one cached plan."""
    cache = PlanCache(maxsize=8)
    winners: list = []
    barrier = threading.Barrier(8)

    def miss() -> None:
        stub = _plan_stub("Q(x, y) <- R(x, y), S(y, z), T(z, w)")
        barrier.wait()
        winners.append(cache.add_or_get(stub)[0])

    threads = [threading.Thread(target=miss) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(cache) == 1
    assert len({id(w) for w in winners}) == 1


def test_plan_cache_hammer_count_invariant():
    """Mixed concurrent lookup/store traffic keeps ``_count`` equal to the
    actual bucket occupancy and within maxsize."""
    cache = PlanCache(maxsize=5)
    shapes = [
        "Q(x, y) <- R(x, y), S(y, z)",
        "Q(x) <- T(x, y)",
        "Q(x, y) <- R(x, y), S(y, z), T(z, w)",
        "Q(a) <- U(a, b), V(b, c)",
        "Q(x) <- R1(x, y1), R2(x, y2), R3(x, y3)",
        "Q(u, v) <- W(u, v)",
        "Q(x, z) <- A(x, y), B(y, z)",
    ]

    def worker(seed: int) -> None:
        rng = random.Random(seed)
        for _ in range(120):
            stub = _plan_stub(rng.choice(shapes))
            if rng.random() < 0.5:
                cache.lookup(stub.ucq, stub.signature)
            else:
                cache.add_or_get(stub)

    threads = [threading.Thread(target=worker, args=(s,)) for s in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    with cache._lock:
        actual = sum(len(b) for b in cache._buckets.values())
        assert cache._count == actual
    assert len(cache) <= 5


def test_locked_counters_do_not_lose_updates():
    class Stats(LockedCounters):
        _fields = ("ticks",)

    stats = Stats()

    def bump() -> None:
        for _ in range(2000):
            stats.add(ticks=1)

    threads = [threading.Thread(target=bump) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert stats.ticks == 16000
    assert stats.as_dict() == {"ticks": 16000}


def test_engine_concurrent_prepared_misses_build_once():
    """Eight threads racing a cold (plan, instance) preprocess it once."""
    engine = Engine()
    ucq = parse_ucq("Q(x, y) <- R(x, y), S(y, z)")
    instance = random_instance_for(
        parse_cq("Q(x, y) <- R(x, y), S(y, z)"), n_tuples=300,
        domain_size=40, seed=3,
    )
    engine.plan(ucq)  # isolate the prepared-cache race from planning
    expected = evaluate_ucq(ucq, instance)
    barrier = threading.Barrier(8)
    results: list[set] = []
    errors: list[BaseException] = []

    def run() -> None:
        try:
            barrier.wait()
            results.append(set(engine.execute(ucq, instance)))
        except BaseException as exc:  # noqa: BLE001 - recorded for assert
            errors.append(exc)

    threads = [threading.Thread(target=run) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert all(r == expected for r in results)
    assert engine.stats.prep_misses == 1
    assert engine.stats.prep_hits == 7


# --------------------------------------------------------------------- #
# partitioning + shard-merge differentials


def test_partition_rows_is_a_partition():
    rows = [(i, i * 7 % 13) for i in range(200)]
    shards = partition_rows(rows, 4)
    assert len(shards) == 4
    flat = [t for shard in shards for t in shard]
    assert sorted(flat) == sorted(rows)
    again = partition_rows(rows, 4)
    assert shards == again  # deterministic within a process


def test_partition_instance_round_trips():
    cq = parse_cq("Q(x, y) <- R(x, y), S(y, z)")
    instance = random_instance_for(cq, n_tuples=150, domain_size=25, seed=9)
    shards = partition_instance(instance, 3)
    assert len(shards) == 3
    for symbol, relation in instance.relations.items():
        rebuilt: set = set()
        for shard in shards:
            part = shard.relations[symbol].tuples
            assert not rebuilt & part  # disjoint
            rebuilt |= part
        assert rebuilt == relation.tuples
    with pytest.raises(ValueError):
        partition_instance(instance, 0)


#: query shapes for the shard-merge differential (constants, repeated
#: variables, self-joins, projections and wide heads included)
DIFFERENTIAL_QUERIES = (
    "Q(x, y) <- R(x, y), S(y, z)",
    "Q(x, y) <- R(x, y), S(y, z), T(z, w)",
    "Q(x) <- R1(x, y1), R2(x, y2), R3(x, y3)",
    "Q(x, y, z) <- R(x, y), S(y, z), T(z, w), U(w, u)",
    "Q(x, y) <- R(x, x), S(x, y)",
    "Q(x) <- R(x, 1), S(x, y)",
    "Q(x, y) <- R(x, y), R(y, x)",
    "Q() <- R(x, y), S(y, z)",
    "Q(x1, x2) <- R1(x1, x2), R2(x2, x3), R3(x3, x4), R4(x4, x5)",
    "Q(a, b) <- E(a, b)",
    "Q(x, y) <- R(x, y), S(y, 2)",
    "Q(v) <- A(v, v)",
    "Q(x, y) <- R(x, y), S(x, y)",
)


def test_parallel_pipeline_matches_reference_on_seeded_queries():
    """``parallel`` with k ∈ {1, 2, 4} equals the reference pipeline on
    50+ seeded (query, instance) cases: answers, membership and per-node
    reduced states."""
    cases = 0
    for seed in (11, 23, 47, 81):
        for text in DIFFERENTIAL_QUERIES:
            cq = parse_cq(text)
            instance = random_instance_for(
                cq, n_tuples=90, domain_size=12, seed=seed
            )
            reference = CDYEnumerator(cq, instance, pipeline="reference")
            expected = set(reference)
            for k in (1, 2, 4):
                par = CDYEnumerator(
                    cq, instance, pipeline="parallel", workers=k
                )
                assert set(par) == expected, (text, seed, k)
                for answer in itertools.islice(expected, 5):
                    assert par.contains(answer), (text, seed, k, answer)
                for nid in par.tree.nodes:
                    assert par.node_rows(nid) == reference.node_rows(nid), (
                        text, seed, k, nid,
                    )
            cases += 1
    assert cases >= 50


def test_parallel_pipeline_empty_and_missing_relations():
    cq = parse_cq("Q(x, y) <- R(x, y), S(y, z)")
    empty = Instance({"R": Relation.empty(2), "S": Relation.empty(2)})
    assert set(CDYEnumerator(cq, empty, pipeline="parallel", workers=3)) == set()
    half = Instance({"R": Relation.from_iterable(2, [(1, 2)]),
                     "S": Relation.empty(2)})
    assert set(CDYEnumerator(cq, half, pipeline="parallel", workers=2)) == set()


def test_parallel_pipeline_rejects_bad_configuration():
    cq = parse_cq("Q(x, y) <- R(x, y)")
    instance = Instance({"R": Relation.from_iterable(2, [(1, 2)])})
    with pytest.raises(ValueError):
        CDYEnumerator(cq, instance, pipeline="parallel", workers=0)
    with pytest.raises(ValueError):
        CDYEnumerator(
            cq, instance, pipeline="parallel", workers=2, pool="fiber"
        )
    with pytest.raises(ValueError):
        CDYEnumerator(cq, instance, pipeline="sharded")


def test_parallel_grounding_feeds_incremental_builds():
    """An incremental enumerator built with sharded grounding answers,
    probes and — the load-bearing part — delta-maintains identically to a
    serially grounded one."""
    cq = parse_cq("Q(x, y) <- R(x, y), S(y, z), T(z, w)")
    ucq = parse_ucq("Q(x, y) <- R(x, y), S(y, z), T(z, w)")
    instance = random_instance_for(cq, n_tuples=200, domain_size=25, seed=6)
    serial = CDYEnumerator(cq, instance, incremental=True)
    sharded = CDYEnumerator(cq, instance, incremental=True, workers=3)
    assert set(sharded) == set(serial) == evaluate_ucq(ucq, instance)
    delta = {"R": ([(901, 902)], []), "S": ([(902, 903)], []),
             "T": ([(903, 904)], [])}
    for enum in (serial, sharded):
        enum.apply_deltas(delta)
    for symbol, (adds, _removes) in delta.items():
        instance.get(symbol).apply_batch(adds, [])
    expected = evaluate_ucq(ucq, instance)
    assert set(sharded) == set(serial) == expected
    assert (901, 902) in expected and sharded.contains((901, 902))


def test_engine_workers_shards_the_serving_cold_path():
    """Engine(workers>1) prepared/serving builds (the mainline cold open)
    go through sharded grounding and stay differentially correct, warm
    hits and delta-applies included."""
    engine = Engine(workers=3)
    ucq = parse_ucq("Q(x, y) <- R(x, y), S(y, z)")
    cq = parse_cq("Q(x, y) <- R(x, y), S(y, z)")
    instance = random_instance_for(cq, n_tuples=200, domain_size=25, seed=12)
    assert set(engine.execute(ucq, instance)) == evaluate_ucq(ucq, instance)
    assert engine.stats.prep_misses == 1
    assert set(engine.execute(ucq, instance)) == evaluate_ucq(ucq, instance)
    assert engine.stats.prep_hits == 1
    instance.get("R").add((701, 702))
    instance.get("S").add((702, 703))
    answers = set(engine.execute(ucq, instance))
    assert answers == evaluate_ucq(ucq, instance)
    assert (701, 702) in answers
    assert engine.stats.delta_applies == 1


def test_engine_workers_routes_cold_builds_through_parallel_pipeline():
    """An Engine with workers>1 answers identically to a serial engine."""
    ucq = parse_ucq(
        "Q1(x, y) <- R(x, y), S(y, z) ; Q2(x, y) <- R(x, w), T(w, y)"
    )
    instance = random_instance_for(
        parse_cq("Q(x, y) <- R(x, y), S(y, z), T(z, w)"),
        n_tuples=120, domain_size=15, seed=5,
    )
    serial = set(Engine().execute(ucq, instance))
    parallel_engine = Engine(workers=3)
    assert set(parallel_engine.execute(ucq, instance)) == serial
    assert serial == evaluate_ucq(ucq, instance)
    with pytest.raises(ValueError):
        Engine(workers=0)


# --------------------------------------------------------------------- #
# the multithreaded hammer


HAMMER_THREADS = 6
HAMMER_ITERATIONS = 40  # x threads = 240 mixed ops > the 200 gate

#: static-instance queries (never mutated: reads must match exactly)
STATIC_QUERIES = (
    "Q(x, y) <- R(x, y), S(y, z)",
    "Q(y, x) <- R(x, y), S(y, z)",       # isomorphic renaming of the above
    "Q(x) <- R(x, y), S(y, z), T(z, w)",
    "Q(a) <- R1(a, b1), R2(a, b2)",
)

#: the dynamic instance toggles between two known states
DYNAMIC_QUERY = "Q(x, y) <- D(x, y), E(y, z)"


def _static_instance() -> Instance:
    cq = parse_cq("Q(x, y) <- R(x, y), S(y, z), T(z, w)")
    inst = random_instance_for(cq, n_tuples=120, domain_size=15, seed=21)
    extra = parse_cq("Q(a) <- R1(a, b1), R2(a, b2)")
    for symbol, rel in random_instance_for(
        extra, n_tuples=80, domain_size=12, seed=22
    ).relations.items():
        inst.relations[symbol] = rel
    return inst


def _dynamic_instance() -> tuple[Instance, dict, set, set]:
    cq = parse_cq(DYNAMIC_QUERY)
    inst = random_instance_for(cq, n_tuples=100, domain_size=12, seed=33)
    ucq = parse_ucq(DYNAMIC_QUERY)
    answers_a = evaluate_ucq(ucq, inst)
    delta = {"D": ([(97, 98), (98, 99)], []), "E": ([(98, 1), (99, 2)], [])}
    snapshot = inst.snapshot()
    for symbol, (adds, removes) in delta.items():
        snapshot.get(symbol).apply_batch(adds, removes)
    answers_b = evaluate_ucq(ucq, snapshot)
    assert answers_a != answers_b  # the toggle must be observable
    return inst, delta, answers_a, answers_b


class _HammerState:
    """Shared bookkeeping for the hammer threads."""

    def __init__(self) -> None:
        self.mismatches: list = []
        self.errors: list = []
        self.session_ids: list[str] = []
        self.fenced = 0
        self.ops = 0
        self.toggle_lock = threading.Lock()
        self.dynamic_state = "a"
        self.record_lock = threading.Lock()


def _drain_session(manager: SessionManager, session, use_resume, rng):
    """Page a session to exhaustion (optionally hopping through a token
    resume mid-stream); returns the collected answer set."""
    answers: list[tuple] = []
    sid = session.session_id
    token = None
    while True:
        page = manager.fetch(sid, rng.choice((7, 16, 31)))
        answers.extend(page.answers)
        token = page.cursor
        if page.done:
            return set(answers)
        if use_resume and rng.random() < 0.3:
            resumed = manager.resume(token)
            sid = resumed.session_id


def test_hammer_mixed_ops_zero_differential_mismatches():
    """N threads of mixed execute/prepare/fetch/resume/apply_delta over a
    shared engine + manager: static reads match single-threaded answers
    exactly, dynamic reads match one of the two toggle states (or fence),
    session ids stay unique and cache counts stay consistent."""
    engine = Engine(cache_size=16, prep_cache_size=16)
    manager = SessionManager(engine=engine, max_sessions=512, page_size=10)
    static_inst = _static_instance()
    dynamic_inst, delta, answers_a, answers_b = _dynamic_instance()
    manager.register(static_inst, "static")
    manager.register(dynamic_inst, "dynamic")

    static_expected = {
        q: evaluate_ucq(parse_ucq(q), static_inst) for q in STATIC_QUERIES
    }
    inverse_delta = {
        sym: (removes, adds) for sym, (adds, removes) in delta.items()
    }
    state = _HammerState()
    barrier = threading.Barrier(HAMMER_THREADS)

    def worker(seed: int) -> None:
        rng = random.Random(seed)
        barrier.wait()
        for _ in range(HAMMER_ITERATIONS):
            op = rng.random()
            query = rng.choice(STATIC_QUERIES)
            try:
                if op < 0.30:  # engine-level execute on the static instance
                    got = set(engine.execute(parse_ucq(query), static_inst))
                    if got != static_expected[query]:
                        state.mismatches.append(("execute", query))
                elif op < 0.45:  # engine-level prepare + full drain
                    prepared = engine.prepare(parse_ucq(query), static_inst)
                    if prepared.resumable:
                        cursor = prepared.enumerator.cursor()
                        got = set(cursor)
                        if prepared.permutation is not None:
                            got = {
                                tuple(t[p] for p in prepared.permutation)
                                for t in got
                            }
                        if got != static_expected[query]:
                            state.mismatches.append(("prepare", query))
                elif op < 0.80:  # session paging (+ token resume hops)
                    session = manager.open(query, "static")
                    with state.record_lock:
                        state.session_ids.append(session.session_id)
                    got = _drain_session(
                        manager, session, use_resume=op < 0.60, rng=rng
                    )
                    if got != static_expected[query]:
                        state.mismatches.append(("session", query))
                elif op < 0.90:  # dynamic reader: either toggle state is fine
                    session = manager.open(DYNAMIC_QUERY, "dynamic")
                    with state.record_lock:
                        state.session_ids.append(session.session_id)
                    got = _drain_session(
                        manager, session, use_resume=False, rng=rng
                    )
                    if got not in (answers_a, answers_b):
                        state.mismatches.append(("dynamic", sorted(got)[:3]))
                else:  # writer: toggle the dynamic instance
                    with state.toggle_lock:
                        if state.dynamic_state == "a":
                            manager.apply_delta("dynamic", delta)
                            state.dynamic_state = "b"
                        else:
                            manager.apply_delta("dynamic", inverse_delta)
                            state.dynamic_state = "a"
            except (
                CursorFencedError,
                SessionNotFoundError,
                EnumerationError,
            ):
                with state.record_lock:
                    state.fenced += 1
            except BaseException as exc:  # noqa: BLE001 - recorded for assert
                state.errors.append(exc)
            finally:
                with state.record_lock:
                    state.ops += 1

    threads = [
        threading.Thread(target=worker, args=(1000 + i,))
        for i in range(HAMMER_THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert not state.errors, state.errors[:3]
    assert not state.mismatches, state.mismatches[:5]
    assert state.ops == HAMMER_THREADS * HAMMER_ITERATIONS >= 200
    assert len(state.session_ids) == len(set(state.session_ids))
    with engine._cache._lock:
        actual = sum(len(b) for b in engine._cache._buckets.values())
        assert engine._cache._count == actual
    assert len(engine._cache) <= 16
    assert len(engine._prepared) <= 16
    # the serving counters kept up with every page served
    assert manager.stats.pages_served > 0
    assert manager.stats.sessions_opened == len(state.session_ids)


# --------------------------------------------------------------------- #
# lock behaviour


def test_rwlock_readers_share_writers_exclude():
    lock = RWLock()
    active: list[str] = []
    overlap = {"readers": 0, "writer_saw_reader": False}
    gate = threading.Barrier(3)

    def reader() -> None:
        gate.wait()
        with lock.read():
            active.append("r")
            overlap["readers"] = max(
                overlap["readers"], active.count("r")
            )
            time.sleep(0.05)
            active.remove("r")

    def writer() -> None:
        gate.wait()
        time.sleep(0.01)  # let the readers in first
        with lock.write():
            overlap["writer_saw_reader"] = bool(active)
            active.append("w")
            time.sleep(0.01)
            active.remove("w")

    threads = [
        threading.Thread(target=reader),
        threading.Thread(target=reader),
        threading.Thread(target=writer),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert overlap["readers"] == 2  # both readers held the lock together
    assert overlap["writer_saw_reader"] is False  # writer ran alone


def test_keyed_locks_serialize_per_key_and_prune():
    locks = KeyedLocks()
    order: list[int] = []

    def task(i: int) -> None:
        with locks.acquire("shared"):
            order.append(i)
            time.sleep(0.01)
            order.append(i)

    threads = [threading.Thread(target=task, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # entries/exits never interleave for one key...
    assert all(order[i] == order[i + 1] for i in range(0, len(order), 2))
    # ...and the registry prunes itself back to empty
    assert len(locks) == 0


def test_keyed_locks_late_contender_shares_the_same_lock():
    """A contender arriving while another still holds the key must join
    the same lock object — exact mutual exclusion, no prune race."""
    locks = KeyedLocks()
    concurrent = {"now": 0, "max": 0}
    gauge = threading.Lock()

    def task() -> None:
        with locks.acquire("k"):
            with gauge:
                concurrent["now"] += 1
                concurrent["max"] = max(concurrent["max"], concurrent["now"])
            time.sleep(0.002)
            with gauge:
                concurrent["now"] -= 1

    threads = [threading.Thread(target=task) for _ in range(12)]
    for t in threads:
        t.start()
        time.sleep(0.001)  # stagger arrivals across release/prune windows
    for t in threads:
        t.join()
    assert concurrent["max"] == 1
    assert len(locks) == 0


class _SlowSet(set):
    """A tuple set whose iteration sleeps — a synthetic slow relation that
    stretches cold preprocessing out long enough to race against."""

    delay = 0.02

    def __iter__(self):
        for t in list(super().__iter__()):
            time.sleep(self.delay)
            yield t


def test_stats_respond_during_slow_open():
    """Introspection endpoints must answer while a cold open is in flight
    (the seed design held one global RLock across the whole engine call)."""
    manager = SessionManager()
    rows = [(i, i + 1) for i in range(30)]
    slow = Instance(
        {
            "R": Relation(2, _SlowSet(rows)),
            "S": Relation(2, _SlowSet(rows)),
        }
    )
    manager.register(slow, "slow")
    opened = threading.Event()

    def slow_open() -> None:
        manager.open("Q(x, y) <- R(x, y), S(y, z)", "slow")
        opened.set()

    thread = threading.Thread(target=slow_open)
    thread.start()
    time.sleep(0.05)  # the open is now mid-preprocessing
    assert not opened.is_set(), "slow instance did not slow the open down"
    start = time.perf_counter()
    info = manager.cache_info()
    elapsed = time.perf_counter() - start
    assert elapsed < 0.3, f"cache_info blocked for {elapsed:.2f}s"
    assert info["live_sessions"] == 0  # the open has not been admitted yet
    assert len(manager) == 0
    thread.join()
    assert opened.is_set()
    assert manager.cache_info()["live_sessions"] == 1


def test_apply_delta_excludes_concurrent_opens():
    """A delta application runs exclusively with opens over the same
    instance (no torn grounding passes), and traffic resumes after."""
    manager = SessionManager()
    cq = parse_cq("Q(x, y) <- R(x, y), S(y, z)")
    inst = random_instance_for(cq, n_tuples=150, domain_size=20, seed=8)
    manager.register(inst, "inst")
    errors: list[BaseException] = []
    stop = threading.Event()

    def churn() -> None:
        try:
            while not stop.is_set():
                session = manager.open("Q(x, y) <- R(x, y), S(y, z)", "inst")
                try:
                    while True:
                        if manager.fetch(session.session_id, 50).done:
                            break
                except (CursorFencedError, SessionNotFoundError):
                    pass
        except BaseException as exc:  # noqa: BLE001 - recorded for assert
            errors.append(exc)

    threads = [threading.Thread(target=churn) for _ in range(3)]
    for t in threads:
        t.start()
    for i in range(10):
        manager.apply_delta("inst", {"R": ([(500 + i, 501 + i)], [])})
        time.sleep(0.005)
    stop.set()
    for t in threads:
        t.join()
    assert not errors, errors[:3]
    # every delta landed exactly once
    assert (509, 510) in inst.get("R").tuples


def test_submit_many_fans_out_groups_across_workers():
    """A pooled batch produces the same grouped results as a serial one."""
    manager = SessionManager(workers=4)
    cq = parse_cq("Q(x, y) <- R(x, y), S(y, z)")
    inst = random_instance_for(cq, n_tuples=80, domain_size=10, seed=4)
    manager.register(inst, "inst")
    requests = [
        ("Q(x, y) <- R(x, y), S(y, z)", "inst"),
        ("Q(a, b) <- R(a, b), S(b, c)", "inst"),     # isomorphic: same group
        ("Q(x) <- R(x, y)", "inst"),
        ("Q(y) <- S(x, y)", "inst"),
        ("broken query ((", "inst"),
        ("Q(x) <- R(x, y)", "missing-instance"),
    ]
    items = submit_many(manager, requests, first_page=True)
    assert [item.index for item in items] == list(range(6))
    assert items[0].group == items[1].group != items[2].group
    assert items[4].error is not None and items[4].session is None
    assert items[5].error is not None
    expected = evaluate_ucq(parse_ucq(requests[0][0]), inst)
    drained = set(items[0].page.answers)
    sid = items[0].session.session_id
    while not items[0].page.done:
        page = manager.fetch(sid)
        drained.update(page.answers)
        if page.done:
            break
    assert drained == expected
    # isomorphic pair planned once, preprocessed once
    assert manager.engine.stats.classifications <= 3
    assert manager.stats.batches == 1
    # the isomorphic pair shares one group; the two failed requests
    # (parse error, unknown instance) never join one
    assert manager.stats.batch_groups == 3
